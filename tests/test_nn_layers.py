"""Gradient checks and forward correctness for every layer.

Every backward pass in ``repro.nn`` is verified against central finite
differences via ``check_layer_gradients``.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn.gradcheck import check_layer_gradients

TOL = 1e-5


def assert_gradients_ok(layer, x, tol=TOL):
    errors = check_layer_gradients(layer, x)
    for name, err in errors.items():
        assert err < tol, f"gradient mismatch for {name}: {err}"


# -- Linear ----------------------------------------------------------------


def test_linear_forward_matches_numpy(rng):
    layer = nn.Linear(4, 3, rng=rng)
    x = rng.normal(size=(5, 4))
    expected = x @ layer.weight.data.T + layer.bias.data
    np.testing.assert_allclose(layer(x), expected)


def test_linear_gradcheck(rng):
    assert_gradients_ok(nn.Linear(4, 3, rng=rng), rng.normal(size=(5, 4)))


def test_linear_no_bias(rng):
    layer = nn.Linear(4, 3, bias=False, rng=rng)
    assert layer.bias is None
    assert_gradients_ok(layer, rng.normal(size=(2, 4)))


def test_linear_rejects_wrong_width(rng):
    layer = nn.Linear(4, 3, rng=rng)
    with pytest.raises(ValueError):
        layer(rng.normal(size=(5, 7)))


def test_linear_rejects_nonpositive_dims():
    with pytest.raises(ValueError):
        nn.Linear(0, 3)


def test_linear_backward_before_forward_raises(rng):
    layer = nn.Linear(4, 3, rng=rng)
    with pytest.raises(RuntimeError):
        layer.backward(np.zeros((2, 3)))


# -- Conv2d -----------------------------------------------------------------


def _naive_conv(x, weight, bias, stride, padding):
    n, c, h, w = x.shape
    oc, _, k, _ = weight.shape
    x_p = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    oh = (h + 2 * padding - k) // stride + 1
    ow = (w + 2 * padding - k) // stride + 1
    out = np.zeros((n, oc, oh, ow))
    for b in range(n):
        for o in range(oc):
            for i in range(oh):
                for j in range(ow):
                    patch = x_p[
                        b, :, i * stride : i * stride + k, j * stride : j * stride + k
                    ]
                    out[b, o, i, j] = np.sum(patch * weight[o])
            if bias is not None:
                out[b, o] += bias[o]
    return out


@pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0)])
def test_conv_forward_matches_naive(rng, stride, padding):
    layer = nn.Conv2d(2, 3, 3, stride=stride, padding=padding, rng=rng)
    x = rng.normal(size=(2, 2, 6, 6))
    expected = _naive_conv(
        x, layer.weight.data, layer.bias.data, stride, padding
    )
    np.testing.assert_allclose(layer(x), expected, atol=1e-12)


def test_conv_1x1_matches_linear_per_pixel(rng):
    layer = nn.Conv2d(3, 2, 1, bias=False, rng=rng)
    x = rng.normal(size=(1, 3, 4, 4))
    out = layer(x)
    w = layer.weight.data.reshape(2, 3)
    expected = np.einsum("oc,nchw->nohw", w, x)
    np.testing.assert_allclose(out, expected, atol=1e-12)


@pytest.mark.parametrize("stride,padding", [(1, 1), (2, 1)])
def test_conv_gradcheck(rng, stride, padding):
    layer = nn.Conv2d(2, 2, 3, stride=stride, padding=padding, rng=rng)
    assert_gradients_ok(layer, rng.normal(size=(2, 2, 5, 5)))


def test_conv_gradcheck_no_bias(rng):
    layer = nn.Conv2d(1, 2, 3, padding=1, bias=False, rng=rng)
    assert_gradients_ok(layer, rng.normal(size=(1, 1, 4, 4)))


def test_conv_rejects_bad_input(rng):
    layer = nn.Conv2d(3, 4, 3, rng=rng)
    with pytest.raises(ValueError):
        layer(rng.normal(size=(1, 2, 6, 6)))


def test_conv_rejects_bad_construction():
    with pytest.raises(ValueError):
        nn.Conv2d(0, 1, 3)
    with pytest.raises(ValueError):
        nn.Conv2d(1, 1, 3, padding=-1)


# -- BatchNorm ----------------------------------------------------------------


def test_batchnorm2d_normalises_in_train_mode(rng):
    bn = nn.BatchNorm2d(3)
    x = rng.normal(loc=5.0, scale=3.0, size=(8, 3, 4, 4))
    out = bn(x)
    np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-10)
    np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-4)


def test_batchnorm2d_gradcheck_train(rng):
    assert_gradients_ok(nn.BatchNorm2d(2), rng.normal(size=(4, 2, 3, 3)))


def test_batchnorm2d_gradcheck_eval(rng):
    bn = nn.BatchNorm2d(2)
    # Populate running stats, then check eval-mode gradients.
    bn(rng.normal(size=(8, 2, 3, 3)))
    bn.eval()
    assert_gradients_ok(bn, rng.normal(size=(4, 2, 3, 3)))


def test_batchnorm1d_gradcheck(rng):
    assert_gradients_ok(nn.BatchNorm1d(5), rng.normal(size=(7, 5)))


def test_batchnorm_running_stats_track_data(rng):
    bn = nn.BatchNorm2d(1, momentum=1.0)  # running stats = last batch
    x = rng.normal(loc=2.0, scale=1.5, size=(64, 1, 8, 8))
    bn(x)
    assert abs(bn.running_mean[0] - 2.0) < 0.1
    assert abs(bn.running_var[0] - 1.5**2) < 0.3


def test_batchnorm_eval_uses_running_stats(rng):
    bn = nn.BatchNorm1d(2)
    bn(rng.normal(size=(32, 2)))
    bn.eval()
    x = rng.normal(size=(4, 2))
    expected = (x - bn.running_mean) / np.sqrt(bn.running_var + bn.eps)
    np.testing.assert_allclose(bn(x), expected, atol=1e-12)


def test_batchnorm_rejects_bad_shapes(rng):
    with pytest.raises(ValueError):
        nn.BatchNorm2d(3)(rng.normal(size=(2, 4, 3, 3)))
    with pytest.raises(ValueError):
        nn.BatchNorm1d(3)(rng.normal(size=(2, 4)))


def test_batchnorm_invalid_construction():
    with pytest.raises(ValueError):
        nn.BatchNorm2d(0)
    with pytest.raises(ValueError):
        nn.BatchNorm2d(3, momentum=0.0)


# -- Activations --------------------------------------------------------------


@pytest.mark.parametrize(
    "layer_factory",
    [nn.ReLU, lambda: nn.LeakyReLU(0.1), nn.Tanh, nn.Sigmoid, nn.Identity],
)
def test_activation_gradcheck(rng, layer_factory):
    # Offset away from the ReLU kink to keep finite differences exact.
    x = rng.normal(size=(3, 5))
    x[np.abs(x) < 0.05] = 0.1
    assert_gradients_ok(layer_factory(), x)


def test_relu_forward():
    out = nn.ReLU()(np.array([[-1.0, 0.0, 2.0]]))
    np.testing.assert_array_equal(out, [[0.0, 0.0, 2.0]])


def test_leaky_relu_forward():
    out = nn.LeakyReLU(0.1)(np.array([[-10.0, 10.0]]))
    np.testing.assert_allclose(out, [[-1.0, 10.0]])


def test_dropout_eval_is_identity(rng):
    layer = nn.Dropout(0.5, rng=rng)
    layer.eval()
    x = rng.normal(size=(4, 4))
    np.testing.assert_array_equal(layer(x), x)


def test_dropout_train_scales_kept_units(rng):
    layer = nn.Dropout(0.5, rng=np.random.default_rng(0))
    x = np.ones((1000,))
    out = layer(x)
    kept = out[out != 0]
    np.testing.assert_allclose(kept, 2.0)  # inverted dropout scaling
    assert 300 < kept.size < 700


def test_dropout_backward_uses_same_mask(rng):
    layer = nn.Dropout(0.5, rng=np.random.default_rng(0))
    x = np.ones((100,))
    out = layer(x)
    grad = layer.backward(np.ones(100))
    np.testing.assert_array_equal(grad == 0, out == 0)


def test_dropout_invalid_p():
    with pytest.raises(ValueError):
        nn.Dropout(1.0)


# -- Pooling -------------------------------------------------------------------


def test_maxpool_forward(rng):
    layer = nn.MaxPool2d(2)
    x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
    out = layer(x)
    np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])


def test_maxpool_gradcheck(rng):
    # Distinct values avoid argmax ties that break finite differences.
    x = rng.permutation(64).astype(float).reshape(1, 1, 8, 8) * 0.1
    assert_gradients_ok(nn.MaxPool2d(2), x)


def test_avgpool_forward():
    x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
    out = nn.AvgPool2d(2)(x)
    np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])


def test_avgpool_gradcheck(rng):
    assert_gradients_ok(nn.AvgPool2d(2), rng.normal(size=(2, 2, 4, 4)))


def test_global_avgpool(rng):
    x = rng.normal(size=(2, 3, 4, 4))
    out = nn.GlobalAvgPool2d()(x)
    np.testing.assert_allclose(out, x.mean(axis=(2, 3)))


def test_global_avgpool_gradcheck(rng):
    assert_gradients_ok(nn.GlobalAvgPool2d(), rng.normal(size=(2, 3, 3, 3)))


def test_flatten_roundtrip(rng):
    layer = nn.Flatten()
    x = rng.normal(size=(2, 3, 4, 4))
    out = layer(x)
    assert out.shape == (2, 48)
    grad = layer.backward(out)
    assert grad.shape == x.shape


# -- Containers ------------------------------------------------------------------


def test_sequential_gradcheck(rng):
    net = nn.Sequential(
        nn.Linear(4, 6, rng=rng), nn.Tanh(), nn.Linear(6, 2, rng=rng)
    )
    assert_gradients_ok(net, rng.normal(size=(3, 4)))


def test_sequential_indexing(rng):
    net = nn.Sequential(nn.ReLU(), nn.Tanh())
    assert len(net) == 2
    assert isinstance(net[0], nn.ReLU)
    assert [type(m).__name__ for m in net] == ["ReLU", "Tanh"]


def test_sequential_append(rng):
    net = nn.Sequential(nn.ReLU())
    net.append(nn.Tanh())
    assert len(net) == 2
    assert len(net.parameters()) == 0


def test_residual_gradcheck(rng):
    body = nn.Sequential(nn.Linear(4, 4, rng=rng), nn.Tanh())
    block = nn.Residual(body, nn.Identity())
    assert_gradients_ok(block, rng.normal(size=(3, 4)))


def test_residual_forward_adds_branches(rng):
    block = nn.Residual(nn.Identity(), nn.Identity())
    x = rng.normal(size=(2, 3))
    np.testing.assert_allclose(block(x), 2 * x)
