"""Tests for the forward-hook / activation-tap API on nn.Module."""

import copy
import pickle

import numpy as np
import pytest

from repro import nn
from repro.parallel import ModelBroadcast
from repro.reram import convert_to_analog


class TwoLayer(nn.Module):
    def __init__(self, rng):
        super().__init__()
        self.fc1 = nn.Linear(4, 3, rng=rng)
        self.fc2 = nn.Linear(3, 2, rng=rng)

    def forward(self, x):
        return self.fc2(self.fc1(x))

    def backward(self, g):
        return self.fc1.backward(self.fc2.backward(g))


def test_hook_receives_module_input_output(rng):
    model = TwoLayer(rng)
    seen = []
    model.fc1.register_forward_hook(
        lambda mod, inp, out: seen.append((mod, inp, out))
    )
    x = rng.normal(size=(5, 4))
    y = model(x)
    assert len(seen) == 1
    mod, inp, out = seen[0]
    assert mod is model.fc1
    assert inp is x
    assert out.shape == (5, 3)
    assert y.shape == (5, 2)


def test_hooks_fire_in_registration_order(rng):
    layer = nn.Linear(4, 3, rng=rng)
    order = []
    layer.register_forward_hook(lambda m, i, o: order.append("a"))
    layer.register_forward_hook(lambda m, i, o: order.append("b"))
    layer.register_forward_hook(lambda m, i, o: order.append("c"))
    layer(rng.normal(size=(2, 4)))
    assert order == ["a", "b", "c"]


def test_hook_can_replace_output(rng):
    layer = nn.Linear(4, 3, rng=rng)
    layer.register_forward_hook(lambda m, i, o: o * 0.0)
    out = layer(rng.normal(size=(2, 4)))
    np.testing.assert_array_equal(out, np.zeros((2, 3)))


def test_hook_returning_none_keeps_output(rng):
    layer = nn.Linear(4, 3, rng=rng)
    clean = layer(rng.normal(size=(2, 4)))
    layer.register_forward_hook(lambda m, i, o: None)
    hooked = layer(rng.normal(size=(2, 4)))
    assert hooked.shape == clean.shape


def test_handle_remove_is_idempotent(rng):
    layer = nn.Linear(4, 3, rng=rng)
    calls = []
    handle = layer.register_forward_hook(lambda m, i, o: calls.append(1))
    layer(rng.normal(size=(2, 4)))
    handle.remove()
    handle.remove()  # second remove is a no-op, not an error
    layer(rng.normal(size=(2, 4)))
    assert len(calls) == 1


def test_handle_is_context_manager(rng):
    layer = nn.Linear(4, 3, rng=rng)
    calls = []
    with layer.register_forward_hook(lambda m, i, o: calls.append(1)):
        layer(rng.normal(size=(2, 4)))
    layer(rng.normal(size=(2, 4)))
    assert len(calls) == 1


def test_removing_one_hook_keeps_others(rng):
    layer = nn.Linear(4, 3, rng=rng)
    order = []
    h1 = layer.register_forward_hook(lambda m, i, o: order.append("a"))
    layer.register_forward_hook(lambda m, i, o: order.append("b"))
    h1.remove()
    layer(rng.normal(size=(2, 4)))
    assert order == ["b"]


def test_clear_forward_hooks(rng):
    layer = nn.Linear(4, 3, rng=rng)
    calls = []
    layer.register_forward_hook(lambda m, i, o: calls.append(1))
    layer.register_forward_hook(lambda m, i, o: calls.append(2))
    layer.clear_forward_hooks()
    layer(rng.normal(size=(2, 4)))
    assert calls == []


def test_register_non_callable_raises(rng):
    layer = nn.Linear(4, 3, rng=rng)
    with pytest.raises(TypeError):
        layer.register_forward_hook("not callable")


def test_raising_hook_does_not_corrupt_later_forwards(rng):
    layer = nn.Linear(4, 3, rng=rng)

    def bad_hook(mod, inp, out):
        raise RuntimeError("boom")

    handle = layer.register_forward_hook(bad_hook)
    x = rng.normal(size=(2, 4))
    with pytest.raises(RuntimeError):
        layer(x)
    handle.remove()
    # The failed call left no residue: a plain forward works and matches.
    clean = layer.forward(x)
    np.testing.assert_array_equal(layer(x), clean)


def test_no_hooks_forward_unchanged(rng):
    layer = nn.Linear(4, 3, rng=rng)
    x = rng.normal(size=(2, 4))
    np.testing.assert_array_equal(layer(x), layer.forward(x))


def test_hooks_fire_through_sequential(rng):
    model = nn.Sequential(
        nn.Linear(4, 3, rng=rng), nn.ReLU(), nn.Linear(3, 2, rng=rng)
    )
    taps = []
    for module in model.modules():
        if isinstance(module, nn.Linear):
            module.register_forward_hook(
                lambda m, i, o: taps.append(o.shape)
            )
    model(rng.normal(size=(5, 4)))
    assert taps == [(5, 3), (5, 2)]


def test_hooks_fire_through_analog_wrappers(rng):
    model = TwoLayer(rng)
    convert_to_analog(model)
    taps = []
    handles = [
        module.register_forward_hook(lambda m, i, o: taps.append(o.shape))
        for module in model.modules()
        if not list(module._modules)
    ]
    model(rng.normal(size=(5, 4)))
    assert taps == [(5, 3), (5, 2)]
    for handle in handles:
        handle.remove()


def test_pickle_drops_hooks(rng):
    model = TwoLayer(rng)

    class Unpicklable:
        def __reduce__(self):
            raise TypeError("must never be pickled")

    captured = []
    closure = Unpicklable()  # pickling the model must not ship this
    model.fc1.register_forward_hook(
        lambda m, i, o: captured.append((closure, o))
    )
    clone = pickle.loads(pickle.dumps(model))
    assert clone.fc1._forward_hooks == {}
    # The original keeps its hooks.
    assert len(model.fc1._forward_hooks) == 1
    x = rng.normal(size=(3, 4))
    np.testing.assert_array_equal(clone(x), model(x))


def test_deepcopy_drops_hooks(rng):
    model = TwoLayer(rng)
    model.fc2.register_forward_hook(lambda m, i, o: None)
    clone = copy.deepcopy(model)
    assert clone.fc2._forward_hooks == {}


def test_model_broadcast_with_hooked_model(rng):
    model = TwoLayer(rng)
    model.fc1.register_forward_hook(lambda m, i, o: None)
    broadcast = ModelBroadcast(model)
    wire = pickle.loads(pickle.dumps(broadcast))
    rebuilt = wire.materialize()
    assert all(
        module._forward_hooks == {} for module in rebuilt.modules()
    )
    x = rng.normal(size=(3, 4))
    np.testing.assert_array_equal(rebuilt(x), model.forward(x))
