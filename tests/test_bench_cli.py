"""Tests for the `python -m repro.bench` CLI and `summary --top N`."""

import json
import os

import pytest

from repro.bench import load_bench
from repro.bench.cli import build_parser, main as bench_main
from repro.bench.report import format_seconds, format_table


# -- parser -----------------------------------------------------------------


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_run_defaults():
    args = build_parser().parse_args(["run"])
    assert args.suite == "fast"
    assert args.output is None


def test_parser_rejects_unknown_suite():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--suite", "nightly"])


# -- list -------------------------------------------------------------------


def test_list_shows_default_suite(capsys):
    assert bench_main(["list"]) == 0
    out = capsys.readouterr().out
    for name in (
        "conv2d/forward",
        "conv2d/backward",
        "faults/sample_fault_map",
        "faults/apply",
        "crossbar/map_matrix",
        "crossbar/matvec",
        "adc/bit_serial_mvm",
        "eval/defect_draw",
        "train/resnet8_epoch",
    ):
        assert name in out


# -- run --------------------------------------------------------------------


def test_run_writes_schema_valid_bench_file(tmp_path, capsys):
    out = str(tmp_path / "BENCH_0.json")
    code = bench_main(
        [
            "run",
            "--suite",
            "fast",
            "--filter",
            "faults/sample_fault_map",
            "-o",
            out,
            "--warmup",
            "1",
            "--min-repeats",
            "3",
            "--max-repeats",
            "3",
            "--min-time",
            "0",
            "--quiet",
        ]
    )
    assert code == 0
    doc = load_bench(out)  # validates on read
    case = doc["cases"]["faults/sample_fault_map"]
    assert case["repeats"] == 3
    assert case["stats"]["median"] > 0.0
    assert "mad" in case["stats"] and "p95" in case["stats"]
    assert doc["provenance"]["git_sha"]
    assert doc["provenance"]["numpy"]
    captured = capsys.readouterr().out
    assert "faults/sample_fault_map" in captured


def test_run_profile_stores_function_digests(tmp_path, capsys):
    out = str(tmp_path / "BENCH_p.json")
    code = bench_main(
        [
            "run",
            "--suite",
            "fast",
            "--filter",
            "telemetry/profile_collapse",
            "-o",
            out,
            "--warmup",
            "1",
            "--min-repeats",
            "3",
            "--min-time",
            "0.3",
            "--profile",
            "--quiet",
        ]
    )
    assert code == 0
    doc = load_bench(out)  # profile block must validate
    case = doc["cases"]["telemetry/profile_collapse"]
    profile = case["profile"]
    assert profile["interval"] > 0
    assert profile["repeats"] == case["repeats"]
    # 0.3s of measured work at 100 Hz lands a healthy sample count.
    assert profile["samples"] > 5
    assert profile["functions"]
    assert all(
        entry["total"] >= entry["self"] >= 0
        for entry in profile["functions"].values()
    )


def test_run_without_profile_omits_digest(tmp_path, capsys):
    out = str(tmp_path / "BENCH_np.json")
    code = bench_main(
        [
            "run",
            "--filter",
            "faults/sample_fault_map",
            "-o",
            out,
            "--warmup",
            "1",
            "--min-repeats",
            "3",
            "--max-repeats",
            "3",
            "--min-time",
            "0",
            "--quiet",
        ]
    )
    assert code == 0
    case = load_bench(out)["cases"]["faults/sample_fault_map"]
    assert "profile" not in case


def test_run_unknown_filter_exits_2(capsys):
    assert bench_main(["run", "--filter", "zzz", "--quiet"]) == 2
    assert "no benchmark cases" in capsys.readouterr().err


# -- report helpers ---------------------------------------------------------


def test_format_seconds_scales():
    assert format_seconds(None) == "-"
    assert format_seconds(90.0) == "1.5m"
    assert format_seconds(1.5) == "1.50s"
    assert format_seconds(0.0015).endswith("ms")
    assert format_seconds(1.5e-6).endswith("µs")
    assert format_seconds(5e-9).endswith("ns")


def test_format_table_alignment_and_validation():
    text = format_table(["name", "n"], [["a", 1], ["bb", 22]])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert lines[1].startswith("--")
    assert lines[2].split() == ["a", "1"]
    with pytest.raises(ValueError):
        format_table(["a"], [["x", "y"]])
    with pytest.raises(ValueError):
        format_table(["a", "b"], [], aligns=["l"])


# -- summary --top ----------------------------------------------------------


def _record_run(tmp_path):
    import numpy as np

    from repro import telemetry
    from repro.models import MLP
    from repro.telemetry import ModuleProfiler

    rng = np.random.default_rng(0)
    with telemetry.session(str(tmp_path)) as run:
        with run.span("pretrain"):
            with run.span("epoch"):
                pass
        with run.span("ft_train"):
            with run.span("epoch"):
                pass
        model = MLP(8, [4], 3, rng=rng)
        with ModuleProfiler(run.metrics).profile(model):
            model(rng.normal(size=(5, 1, 2, 4)))
        return run.directory


def test_summary_top_tables(tmp_path, capsys):
    from repro.experiments.cli import main as experiments_main

    run_dir = _record_run(tmp_path)
    code = experiments_main(
        ["summary", "--run", run_dir, "--top", "3", "--quiet"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Slowest spans" in out
    assert "Per-layer forward/backward" in out
    # Span paths are full paths, not collapsed leaves.
    assert "pretrain/epoch" in out
    assert "fwd total" in out


def test_summary_top_rejects_non_positive(tmp_path, capsys):
    from repro.experiments.cli import main as experiments_main

    run_dir = _record_run(tmp_path)
    assert (
        experiments_main(["summary", "--run", run_dir, "--top", "0"]) == 2
    )


def test_summary_without_top_unchanged(tmp_path, capsys):
    from repro.experiments.cli import main as experiments_main

    run_dir = _record_run(tmp_path)
    assert experiments_main(["summary", "--run", run_dir]) == 0
    out = capsys.readouterr().out
    assert "Slowest spans" not in out
