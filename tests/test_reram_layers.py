"""Tests for analog inference layers."""

import numpy as np
import pytest

from repro import nn
from repro.models import MLP, SimpleCNN, resnet8
from repro.reram import (
    ADCModel,
    AnalogConv2d,
    AnalogLinear,
    CrossbarMapper,
    ReRAMDeviceModel,
    convert_to_analog,
)

FINE = ReRAMDeviceModel(g_off=1e-6, g_on=1e-4, levels=4096)


def fine_mapper():
    return CrossbarMapper(device=FINE, tile_size=64)


def test_analog_linear_matches_digital(rng):
    layer = nn.Linear(10, 6, rng=rng)
    analog = AnalogLinear.from_linear(layer, fine_mapper())
    x = rng.normal(size=(4, 10))
    np.testing.assert_allclose(analog(x), layer(x), rtol=0.02, atol=0.02)


def test_analog_linear_no_bias(rng):
    layer = nn.Linear(5, 3, bias=False, rng=rng)
    analog = AnalogLinear.from_linear(layer, fine_mapper())
    x = rng.normal(size=(2, 5))
    np.testing.assert_allclose(analog(x), layer(x), rtol=0.02, atol=0.02)


def test_analog_conv_matches_digital(rng):
    layer = nn.Conv2d(3, 4, 3, stride=1, padding=1, rng=rng)
    analog = AnalogConv2d.from_conv(layer, fine_mapper())
    x = rng.normal(size=(2, 3, 6, 6))
    np.testing.assert_allclose(analog(x), layer(x), rtol=0.05, atol=0.05)


def test_analog_conv_strided(rng):
    layer = nn.Conv2d(2, 3, 3, stride=2, padding=1, bias=False, rng=rng)
    analog = AnalogConv2d.from_conv(layer, fine_mapper())
    x = rng.normal(size=(1, 2, 8, 8))
    assert analog(x).shape == layer(x).shape


def test_analog_backward_raises(rng):
    layer = nn.Linear(4, 2, rng=rng)
    analog = AnalogLinear.from_linear(layer, fine_mapper())
    analog(rng.normal(size=(1, 4)))
    with pytest.raises(RuntimeError):
        analog.backward(np.ones((1, 2)))


def test_analog_faults_change_output(rng):
    layer = nn.Linear(16, 8, rng=rng)
    analog = AnalogLinear.from_linear(layer, fine_mapper())
    x = rng.normal(size=(3, 16))
    clean = analog(x)
    count = analog.inject_faults(0.3, rng)
    assert count > 0
    assert not np.allclose(analog(x), clean, atol=1e-6)


def test_convert_whole_mlp(rng):
    model = MLP(8, [12], 3, rng=rng)
    model.eval()
    x = rng.normal(size=(4, 1, 2, 4))
    digital = model(x)
    convert_to_analog(model, fine_mapper())
    analog_out = model(x)
    np.testing.assert_allclose(analog_out, digital, rtol=0.05, atol=0.05)
    # No Linear layers remain.
    assert not any(isinstance(m, nn.Linear) for m in model.modules())
    assert any(isinstance(m, AnalogLinear) for m in model.modules())


def test_convert_whole_cnn_predictions_agree(rng):
    model = SimpleCNN(in_channels=1, num_classes=3, image_size=8, width=4,
                      rng=rng)
    model.eval()
    x = rng.normal(size=(6, 1, 8, 8))
    digital_pred = model(x).argmax(axis=1)
    convert_to_analog(model, fine_mapper())
    analog_pred = model(x).argmax(axis=1)
    assert (digital_pred == analog_pred).mean() >= 5 / 6


def test_convert_resnet_runs(rng):
    model = resnet8(num_classes=4, base_width=4, rng=rng)
    model.eval()
    x = rng.normal(size=(2, 3, 8, 8))
    digital = model(x)
    convert_to_analog(model, fine_mapper())
    analog_out = model(x)
    assert analog_out.shape == digital.shape
    assert not any(isinstance(m, nn.Conv2d) for m in model.modules())


def test_convert_with_adc_path(rng):
    model = MLP(8, [12], 3, rng=rng)
    model.eval()
    x = rng.normal(size=(4, 1, 2, 4))
    digital = model(x)
    convert_to_analog(
        model, fine_mapper(),
        adc=ADCModel(bits=12, full_scale=200.0), input_bits=8,
    )
    analog_out = model(x)
    # Coarser path, looser agreement — predictions mostly match.
    assert (analog_out.argmax(axis=1) == digital.argmax(axis=1)).mean() >= 0.75
