"""FT retraining of a pruned backbone must preserve its sparsity."""

import numpy as np

from repro import nn
from repro.core import Trainer
from repro.datasets import ArrayDataset, DataLoader
from repro.experiments import get_scale
from repro.experiments.runner import train_fault_tolerant
from repro.models import MLP
from repro.pruning import magnitude_prune, model_sparsity

CI = get_scale("ci").with_overrides(ft_epochs=2)


def make_setup(rng):
    n = 80
    centers = rng.normal(size=(3, 8)) * 3
    labels = rng.integers(0, 3, size=n)
    images = centers[labels] + rng.normal(size=(n, 8)) * 0.3
    loader = DataLoader(
        ArrayDataset(images.reshape(n, 1, 2, 4), labels), 40,
        shuffle=True, seed=0,
    )
    model = MLP(8, [16], 3, rng=rng)
    opt = nn.SGD(model.parameters(), lr=0.1, momentum=0.9)
    Trainer(model, opt).fit(loader, 4)
    return model, loader


def test_preserve_sparsity_keeps_masks(rng):
    model, loader = make_setup(rng)
    magnitude_prune(model, 0.6)
    before = model_sparsity(model)
    retrained = train_fault_tolerant(
        model, "one_shot", 0.05, CI, loader, rng=rng, preserve_sparsity=True
    )
    assert model_sparsity(retrained) >= before - 0.01


def test_without_preserve_sparsity_weights_regrow(rng):
    model, loader = make_setup(rng)
    magnitude_prune(model, 0.6)
    retrained = train_fault_tolerant(
        model, "one_shot", 0.05, CI, loader, rng=rng, preserve_sparsity=False
    )
    assert model_sparsity(retrained) < 0.3  # gradients refill zeros


def test_preserve_sparsity_noop_on_dense_model(rng):
    model, loader = make_setup(rng)
    retrained = train_fault_tolerant(
        model, "progressive", 0.05, CI, loader, rng=rng,
        preserve_sparsity=True,
    )
    assert model_sparsity(retrained) < 0.05
