"""Tests for repro.telemetry.ledger and the python -m repro.telemetry CLI."""

import json
import os

import pytest

from repro import telemetry
from repro.telemetry.cli import main as cli_main
from repro.telemetry.ledger import (
    INDEX_FILENAME,
    INDEX_VERSION,
    RunRecord,
    build_index,
    diff_runs,
    load_index,
    render_diff,
    scan_runs,
)


def _make_run(directory, seed, loss, steps, span_seconds=0.0):
    """One synthetic finished run with a controllable metric fingerprint."""
    with telemetry.session(
        str(directory), config={"experiment": "t", "seed": seed}
    ) as run:
        with run.span("work"):
            pass
        run.metrics.counter("train/steps_total").inc(steps)
        run.metrics.gauge("train/epoch_loss").set(loss)
        return run.directory


@pytest.fixture()
def two_runs(tmp_path):
    old = _make_run(tmp_path, seed=1, loss=0.8, steps=10)
    new = _make_run(tmp_path, seed=2, loss=0.5, steps=30)
    return str(tmp_path), old, new


def test_run_record_digests_artefacts(two_runs):
    parent, old, _ = two_runs
    record = RunRecord.from_run_dir(old)
    assert record.run_id == os.path.basename(old)
    assert record.config == {"experiment": "t", "seed": 1}
    assert record.counters["train/steps_total"] == 10
    assert record.gauges["train/epoch_loss"] == 0.8
    assert record.duration_seconds is not None and record.duration_seconds >= 0
    assert record.num_events >= 4  # run_start, span pair, run_end
    assert record.spans["work"]["count"] == 1
    assert record.skipped_lines == 0
    assert RunRecord.from_dict(record.as_dict()) == record


def test_scan_and_index_round_trip(two_runs):
    parent, old, new = two_runs
    records = scan_runs(parent)
    assert [r.run_dir for r in records] == sorted([old, new])

    index = build_index(parent)
    assert index["version"] == INDEX_VERSION
    assert index["num_runs"] == 2
    index_path = os.path.join(parent, INDEX_FILENAME)
    assert os.path.isfile(index_path)

    loaded = load_index(parent)
    assert loaded == index

    # A future-versioned index is rebuilt, not misread.
    with open(index_path, "w") as handle:
        json.dump({"version": INDEX_VERSION + 1, "runs": []}, handle)
    rebuilt = load_index(parent)
    assert rebuilt["num_runs"] == 2


def test_scan_accepts_single_run_dir(two_runs):
    _, old, _ = two_runs
    records = scan_runs(old)
    assert len(records) == 1
    assert records[0].run_dir == old


def test_diff_reports_metric_deltas(two_runs):
    _, old, new = two_runs
    diff = diff_runs(old, new)
    gauges = {e["name"]: e for e in diff["gauges"]}
    assert gauges["train/epoch_loss"]["delta"] == pytest.approx(-0.3)
    counters = {e["name"]: e for e in diff["counters"]}
    assert counters["train/steps_total"]["delta"] == 20
    text = render_diff(diff)
    assert "train/epoch_loss" in text
    assert "train/steps_total" in text


def test_diff_flags_span_regressions():
    old = RunRecord(
        run_id="a", run_dir="a", spans={"work": {"count": 1, "seconds": 1.0}}
    )
    new = RunRecord(
        run_id="b", run_dir="b", spans={"work": {"count": 1, "seconds": 2.0}}
    )
    diff = diff_runs(old, new, threshold=0.5)
    assert [r["name"] for r in diff["regressions"]] == ["work"]
    assert diff_runs(old, new, threshold=2.0)["regressions"] == []
    with pytest.raises(ValueError):
        diff_runs(old, new, threshold=-0.1)


def test_cli_ls_lists_runs(two_runs, capsys):
    parent, old, new = two_runs
    assert cli_main(["ls", parent]) == 0
    out = capsys.readouterr().out
    assert os.path.basename(old) in out
    assert os.path.basename(new) in out
    assert os.path.isfile(os.path.join(parent, INDEX_FILENAME))


def test_cli_show_json_and_text(two_runs, capsys):
    _, old, _ = two_runs
    assert cli_main(["show", old, "--json"]) == 0
    record = json.loads(capsys.readouterr().out)
    assert record["run_id"] == os.path.basename(old)
    assert cli_main(["show", old]) == 0
    assert "Telemetry summary" in capsys.readouterr().out


def test_cli_diff_reports_and_gates(two_runs, capsys):
    _, old, new = two_runs
    assert cli_main(["diff", old, new]) == 0
    assert "train/epoch_loss" in capsys.readouterr().out
    # Span growth beyond a tiny threshold + the gate flag -> exit 1.
    code = cli_main(
        ["diff", old, new, "--threshold", "0", "--fail-on-regression",
         "--json"]
    )
    payload = json.loads(capsys.readouterr().out)
    spans_changed = any(e["name"] == "work" for e in payload["spans"])
    assert code == (1 if payload["regressions"] else 0)
    assert spans_changed or payload["spans"] == []


def test_cli_trace_exports(two_runs, capsys):
    _, old, _ = two_runs
    os.remove(os.path.join(old, "trace.json"))
    assert cli_main(["trace", old]) == 0
    path = capsys.readouterr().out.strip()
    assert os.path.isfile(path)
    assert telemetry.validate_trace(json.load(open(path))) == []


def test_cli_missing_directory_exits_2(tmp_path, capsys):
    assert cli_main(["ls", str(tmp_path / "nope")]) == 2
    assert cli_main(["show", str(tmp_path / "nope")]) == 2


def test_runs_by_config_groups_and_sorts(two_runs):
    from repro.telemetry.ledger import runs_by_config

    parent, _, _ = two_runs
    by_seed = runs_by_config(parent, "seed")
    assert set(by_seed) == {"1", "2"}
    assert all(len(records) == 1 for records in by_seed.values())
    by_exp = runs_by_config(parent, "experiment")
    assert set(by_exp) == {"t"}
    assert len(by_exp["t"]) == 2
    run_ids = [r.run_id for r in by_exp["t"]]
    assert run_ids == sorted(run_ids)
    # keys absent from every run, and missing directories, come back empty
    assert runs_by_config(parent, "nope") == {}
    assert runs_by_config(os.path.join(parent, "missing"), "seed") == {}
