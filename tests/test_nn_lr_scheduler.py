"""Tests for learning-rate schedules."""

import math

import numpy as np
import pytest

from repro import nn


def make_opt(lr=0.1):
    return nn.SGD([nn.Parameter(np.zeros(1))], lr=lr)


def test_cosine_endpoints():
    opt = make_opt(0.1)
    sched = nn.CosineAnnealingLR(opt, t_max=10)
    assert opt.lr == 0.1
    for _ in range(10):
        sched.step()
    assert abs(opt.lr) < 1e-12


def test_cosine_midpoint_is_half():
    opt = make_opt(0.2)
    sched = nn.CosineAnnealingLR(opt, t_max=10)
    for _ in range(5):
        sched.step()
    assert abs(opt.lr - 0.1) < 1e-12


def test_cosine_eta_min_floor():
    opt = make_opt(0.1)
    sched = nn.CosineAnnealingLR(opt, t_max=4, eta_min=0.01)
    for _ in range(10):  # past t_max: clamps at eta_min
        sched.step()
    assert abs(opt.lr - 0.01) < 1e-12


def test_cosine_monotone_decreasing():
    opt = make_opt(0.1)
    sched = nn.CosineAnnealingLR(opt, t_max=20)
    lrs = []
    for _ in range(20):
        sched.step()
        lrs.append(opt.lr)
    assert all(a > b for a, b in zip(lrs, lrs[1:]))


def test_cosine_invalid_tmax():
    with pytest.raises(ValueError):
        nn.CosineAnnealingLR(make_opt(), t_max=0)


def test_step_lr_decays_every_step_size():
    opt = make_opt(1.0)
    sched = nn.StepLR(opt, step_size=2, gamma=0.1)
    lrs = []
    for _ in range(6):
        sched.step()
        lrs.append(opt.lr)
    # Epoch k's lr is gamma^(k // step_size); sampled at epochs 1..6.
    assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01, 0.01, 0.001])


def test_multistep_lr():
    opt = make_opt(1.0)
    sched = nn.MultiStepLR(opt, milestones=[2, 4], gamma=0.5)
    lrs = []
    for _ in range(5):
        sched.step()
        lrs.append(opt.lr)
    assert lrs == pytest.approx([1.0, 0.5, 0.5, 0.25, 0.25])


def test_multistep_requires_ascending():
    with pytest.raises(ValueError):
        nn.MultiStepLR(make_opt(), milestones=[4, 2])


def test_warmup_then_cosine():
    opt = make_opt(0.1)
    after = nn.CosineAnnealingLR(opt, t_max=10)
    sched = nn.WarmupLR(opt, warmup_epochs=5, after=after)
    lrs = []
    for _ in range(15):
        sched.step()
        lrs.append(opt.lr)
    # Linear ramp during warmup.
    assert lrs[0] == pytest.approx(0.1 / 5)
    assert lrs[4] == pytest.approx(0.1)
    # Then cosine decay to zero.
    assert abs(lrs[-1]) < 1e-12
    assert lrs[5] < lrs[4] or math.isclose(lrs[5], lrs[4], rel_tol=0.2)


def test_warmup_validation():
    with pytest.raises(ValueError):
        nn.WarmupLR(make_opt(), warmup_epochs=-1, after=None)
