"""Tests for repro.bench.stats: robust timing statistics."""

import numpy as np
import pytest

from repro.bench import describe, mad, reject_outliers
from repro.bench.stats import MAD_TO_SIGMA


def test_mad_of_symmetric_sample():
    assert mad([1.0, 2.0, 3.0, 4.0, 5.0]) == 1.0


def test_mad_is_shift_invariant():
    base = [0.1, 0.2, 0.3, 0.4, 0.7]
    shifted = [v + 100.0 for v in base]
    assert mad(base) == pytest.approx(mad(shifted))


def test_mad_empty_raises():
    with pytest.raises(ValueError):
        mad([])


def test_reject_outliers_drops_only_slow_stragglers():
    # A tight cluster plus two wildly slow warm-up samples.
    values = [1.0, 1.01, 0.99, 1.02, 0.98, 1.0, 1.01, 10.0, 25.0]
    kept, rejected = reject_outliers(values, threshold=5.0)
    assert sorted(rejected) == [10.0, 25.0]
    assert len(kept) == 7
    assert max(kept) <= 1.02


def test_reject_outliers_is_one_sided():
    # An implausibly *fast* sample is kept: timings can't lie low by noise.
    values = [1.0, 1.01, 0.99, 1.02, 0.98, 1.0, 1.01, 0.001]
    kept, rejected = reject_outliers(values, threshold=5.0)
    assert rejected == []
    assert 0.001 in kept


def test_reject_outliers_zero_mad_keeps_everything():
    values = [1.0] * 10 + [50.0]
    kept, rejected = reject_outliers(values)
    # Median spread is zero: nothing is distinguishable, keep all.
    assert rejected == []
    assert len(kept) == 11


def test_reject_outliers_validation():
    with pytest.raises(ValueError):
        reject_outliers([])
    with pytest.raises(ValueError):
        reject_outliers([1.0], threshold=0.0)


def test_reject_outliers_fence_position():
    rng = np.random.default_rng(0)
    values = list(rng.normal(1.0, 0.01, size=200))
    centre = float(np.median(values))
    spread = mad(values) * MAD_TO_SIGMA
    just_inside = centre + 2.9 * spread
    just_outside = centre + 3.1 * spread
    kept, rejected = reject_outliers(
        values + [just_inside, just_outside], threshold=3.0
    )
    assert just_inside in kept
    assert just_outside in rejected


def test_describe_matches_numpy():
    rng = np.random.default_rng(1)
    values = list(rng.exponential(0.01, size=500))
    digest = describe(values)
    assert digest["count"] == 500
    assert digest["median"] == pytest.approx(np.median(values))
    assert digest["mean"] == pytest.approx(np.mean(values))
    assert digest["std"] == pytest.approx(np.std(values))
    assert digest["p95"] == pytest.approx(np.percentile(values, 95))
    assert digest["p99"] == pytest.approx(np.percentile(values, 99))
    assert digest["min"] == min(values)
    assert digest["max"] == max(values)
    assert digest["total"] == pytest.approx(sum(values))
    assert digest["mad"] == pytest.approx(mad(values))


def test_describe_empty_raises():
    with pytest.raises(ValueError):
        describe([])


def test_describe_is_json_friendly():
    import json

    json.dumps(describe([0.1, 0.2, 0.3]))
