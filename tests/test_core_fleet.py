"""Tests for fleet simulation."""

import numpy as np
import pytest

from repro import nn
from repro.core import Trainer, simulate_fleet
from repro.datasets import ArrayDataset, DataLoader
from repro.models import MLP


@pytest.fixture
def setup(rng):
    n = 80
    centers = rng.normal(size=(3, 8)) * 3
    labels = rng.integers(0, 3, size=n)
    images = centers[labels] + rng.normal(size=(n, 8)) * 0.3
    loader = DataLoader(
        ArrayDataset(images.reshape(n, 1, 2, 4), labels), 40,
        shuffle=True, seed=0,
    )
    model = MLP(8, [16], 3, rng=rng)
    opt = nn.SGD(model.parameters(), lr=0.1, momentum=0.9)
    Trainer(model, opt).fit(loader, 6)
    return model, loader


def test_fleet_size(setup, rng):
    model, loader = setup
    report = simulate_fleet(model, loader, 0.1, num_devices=7, rng=rng)
    assert report.num_devices == 7
    assert len(report.accuracies) == 7


def test_fleet_statistics_consistent(setup, rng):
    model, loader = setup
    report = simulate_fleet(model, loader, 0.2, num_devices=10, rng=rng)
    assert report.worst <= report.quantile(0.5) <= report.best
    assert report.worst <= report.mean <= report.best
    assert report.mean == pytest.approx(float(np.mean(report.accuracies)))


def test_fleet_yield_boundaries(setup, rng):
    model, loader = setup
    report = simulate_fleet(model, loader, 0.2, num_devices=10, rng=rng)
    assert report.yield_at(0.0) == 1.0
    assert report.yield_at(100.1) == 0.0
    mid = report.quantile(0.5)
    assert 0.0 < report.yield_at(mid) <= 1.0


def test_fleet_zero_rate_all_identical(setup, rng):
    model, loader = setup
    report = simulate_fleet(model, loader, 0.0, num_devices=5, rng=rng)
    assert report.std == 0.0
    assert report.worst == report.best


def test_fleet_restores_model(setup, rng):
    model, loader = setup
    before = {n: p.data.copy() for n, p in model.named_parameters()}
    simulate_fleet(model, loader, 0.3, num_devices=4, rng=rng)
    for n, p in model.named_parameters():
        np.testing.assert_array_equal(p.data, before[n])


def test_fleet_deterministic_under_seed(setup):
    model, loader = setup
    a = simulate_fleet(model, loader, 0.1, num_devices=4,
                       rng=np.random.default_rng(3))
    b = simulate_fleet(model, loader, 0.1, num_devices=4,
                       rng=np.random.default_rng(3))
    assert a.accuracies == b.accuracies


def test_fleet_summary_contains_stats(setup, rng):
    model, loader = setup
    report = simulate_fleet(model, loader, 0.1, num_devices=4, rng=rng)
    text = report.summary()
    assert "mean" in text
    assert "worst" in text


def test_fleet_validation(setup, rng):
    model, loader = setup
    with pytest.raises(ValueError):
        simulate_fleet(model, loader, 0.1, num_devices=0, rng=rng)
    report = simulate_fleet(model, loader, 0.1, num_devices=2, rng=rng)
    with pytest.raises(ValueError):
        report.quantile(1.5)
