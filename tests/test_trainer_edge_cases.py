"""Trainer edge cases and optimiser/trainer interplay."""

import numpy as np
import pytest

from repro import nn
from repro.core import (
    OneShotFaultTolerantTrainer,
    ProgressiveFaultTolerantTrainer,
    Trainer,
)
from repro.datasets import ArrayDataset, DataLoader
from repro.models import MLP


def loader_of(rng, n=60, batch=30):
    centers = rng.normal(size=(3, 8)) * 3
    labels = rng.integers(0, 3, size=n)
    images = centers[labels] + rng.normal(size=(n, 8)) * 0.3
    return DataLoader(ArrayDataset(images.reshape(n, 1, 2, 4), labels),
                      batch, shuffle=True, seed=0)


def test_trainer_with_adam(rng):
    loader = loader_of(rng)
    model = MLP(8, [16], 3, rng=rng)
    opt = nn.Adam(model.parameters(), lr=0.01)
    history = Trainer(model, opt).fit(loader, 6)
    assert history.epoch_losses[-1] < history.epoch_losses[0]


def test_ft_trainer_with_adam(rng):
    loader = loader_of(rng)
    model = MLP(8, [16], 3, rng=rng)
    opt = nn.Adam(model.parameters(), lr=0.01)
    trainer = OneShotFaultTolerantTrainer(model, opt, p_sa_target=0.05,
                                          rng=rng)
    history = trainer.fit(loader, 4)
    assert history.num_epochs == 4
    assert all(np.isfinite(l) for l in history.epoch_losses)


def test_empty_loader_raises(rng):
    empty = DataLoader(
        ArrayDataset(np.zeros((3, 1, 2, 4)), np.zeros(3, dtype=int)),
        10, drop_last=True,
    )
    model = MLP(8, [4], 3, rng=rng)
    opt = nn.SGD(model.parameters(), lr=0.1)
    with pytest.raises(ValueError):
        Trainer(model, opt).fit(empty, 1)


def test_ft_trainer_custom_loss(rng):
    """FT trainers accept any (logits, labels) -> (loss, grad) callable."""
    calls = []

    def counting_loss(logits, labels):
        calls.append(1)
        return nn.CrossEntropyLoss()(logits, labels)

    loader = loader_of(rng)
    model = MLP(8, [8], 3, rng=rng)
    opt = nn.SGD(model.parameters(), lr=0.05)
    OneShotFaultTolerantTrainer(
        model, opt, p_sa_target=0.02, loss_fn=counting_loss, rng=rng
    ).fit(loader, 2)
    assert len(calls) == 2 * len(loader)


def test_progressive_epoch_count_matches_schedule_times_budget(rng):
    loader = loader_of(rng)
    model = MLP(8, [8], 3, rng=rng)
    opt = nn.SGD(model.parameters(), lr=0.05)
    trainer = ProgressiveFaultTolerantTrainer(
        model, opt, p_sa_schedule=[0.01, 0.02, 0.05, 0.1], rng=rng
    )
    history = trainer.fit(loader, 3)
    assert history.num_epochs == 12
    # Rates appear in ascending blocks of 3.
    assert history.epoch_p_sa == (
        [0.01] * 3 + [0.02] * 3 + [0.05] * 3 + [0.1] * 3
    )


def test_scheduler_steps_once_per_epoch_in_progressive(rng):
    loader = loader_of(rng)
    model = MLP(8, [8], 3, rng=rng)
    opt = nn.SGD(model.parameters(), lr=0.1)
    sched = nn.CosineAnnealingLR(opt, t_max=6)
    trainer = ProgressiveFaultTolerantTrainer(
        model, opt, p_sa_schedule=[0.01, 0.1], rng=rng, scheduler=sched
    )
    trainer.fit(loader, 3)
    assert sched.last_epoch == 6
    assert opt.lr == pytest.approx(0.0, abs=1e-12)


def test_val_loader_metrics_in_ft_training(rng):
    loader = loader_of(rng)
    model = MLP(8, [8], 3, rng=rng)
    opt = nn.SGD(model.parameters(), lr=0.05)
    trainer = OneShotFaultTolerantTrainer(
        model, opt, p_sa_target=0.02, rng=rng, val_loader=loader
    )
    history = trainer.fit(loader, 3)
    assert len(history.epoch_val_accuracy) == 3
    # Validation runs on pristine weights: accuracy must be reasonable.
    assert history.epoch_val_accuracy[-1] > 33.0
