"""Tests for the experiment CLI."""

import json
import os

import pytest

from repro.experiments.cli import build_parser, main


def test_parser_defaults():
    args = build_parser().parse_args(["table1"])
    assert args.experiment == "table1"
    assert args.scale == "bench"
    assert args.dataset == "small"


def test_parser_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["table9"])


def test_parser_rejects_unknown_scale():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["table1", "--scale", "galactic"])


def test_cli_table1_writes_outputs(tmp_path, capsys, monkeypatch):
    # Shrink the CI scale further so this test stays fast.
    from repro.experiments import cli as cli_mod
    from repro.experiments import get_scale

    tiny = get_scale("ci").with_overrides(
        train_rates=(0.05,), defect_runs=2, test_rates=(0.0, 0.02),
        pretrain_epochs=3, ft_epochs=2,
    )
    monkeypatch.setattr(cli_mod, "get_scale", lambda name: tiny)

    out = str(tmp_path / "results")
    code = main(
        ["table1", "--scale", "ci", "--dataset", "small", "--out", out,
         "--quiet"]
    )
    assert code == 0
    captured = capsys.readouterr()
    assert "Table I" in captured.out
    assert os.path.exists(os.path.join(out, "table1_small.txt"))
    with open(os.path.join(out, "table1_small.json")) as handle:
        payload = json.load(handle)
    assert payload[0]["method"] == "Baseline Pretrained Model"


def test_cli_seed_override(monkeypatch):
    from repro.experiments import cli as cli_mod

    captured_scale = {}

    def fake_run_table1(scale, dataset, verbose):
        captured_scale["seed"] = scale.seed

        class Dummy:
            text = "Table I (dummy)"
            reports = []

        return Dummy()

    monkeypatch.setattr(cli_mod, "run_table1", fake_run_table1)
    main(["table1", "--scale", "ci", "--seed", "123", "--quiet"])
    assert captured_scale["seed"] == 123
