"""Engine edge cases: broken files, suppression widening, empty trees.

These exercise the plumbing underneath every rule — a linter that
crashes on the code it is supposed to gate is worse than no linter.
"""

import os
import subprocess
import sys

import repro.lint.rules  # noqa: F401  (registers the built-in rules)
from repro.lint import lint_paths
from repro.lint.engine import load_project

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_cli(args, cwd):
    return subprocess.run(
        [sys.executable, "-m", "repro.lint"] + args,
        capture_output=True,
        text=True,
        cwd=str(cwd),
        env={**os.environ, "PYTHONPATH": os.path.join(REPO_ROOT, "src")},
    )


# -- broken input -----------------------------------------------------------


def test_syntax_error_becomes_rl000_finding(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n    pass\n")
    project, errors = load_project([str(tmp_path)])
    assert project.sources == []
    assert [f.rule for f in errors] == ["RL000"]
    assert "syntax error" in errors[0].message


def test_cli_reports_syntax_error_and_exits_1(tmp_path):
    (tmp_path / "bad.py").write_text("def broken(:\n")
    proc = run_cli(["run", "--no-baseline", str(tmp_path)], cwd=tmp_path)
    assert proc.returncode == 1
    assert "RL000" in proc.stdout


def test_schema_subcommand_rejects_unparsable_tree(tmp_path):
    (tmp_path / "bad.py").write_text("def broken(:\n")
    proc = run_cli(["schema", "-o", "-", str(tmp_path)], cwd=tmp_path)
    assert proc.returncode == 2
    assert "syntax error" in proc.stderr


# -- empty trees ------------------------------------------------------------


def test_empty_project_is_clean(tmp_path):
    assert lint_paths([str(tmp_path)]) == []


def test_cli_empty_project_exits_0(tmp_path):
    proc = run_cli(["run", "--no-baseline", str(tmp_path)], cwd=tmp_path)
    assert proc.returncode == 0
    assert "no findings" in proc.stdout


# -- suppression-line widening ----------------------------------------------


_DECORATED_MODULE = (
    "import functools\n"
    "\n"
    "__all__ = []\n"
    "\n"
    "\n"
    "@functools.wraps(len){comment}\n"
    "def cached_lookup(key):\n"
    "    return key\n"
)


def test_suppression_on_decorator_line_of_flagged_def(tmp_path):
    # RL004 anchors on the def; the disable comment rides the decorator.
    target = tmp_path / "mod.py"
    target.write_text(_DECORATED_MODULE.format(comment=""))
    assert [f.rule for f in lint_paths([str(target)], select=["RL004"])] == [
        "RL004"
    ]
    target.write_text(
        _DECORATED_MODULE.format(comment="  # repro-lint: disable=RL004")
    )
    assert lint_paths([str(target)], select=["RL004"]) == []


def test_suppression_on_closing_line_of_multiline_expression(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(
        "import numpy as np\n\nrng = np.random.default_rng(\n)\n"
    )
    assert [f.rule for f in lint_paths([str(target)], select=["RL001"])] == [
        "RL001"
    ]
    target.write_text(
        "import numpy as np\n"
        "\n"
        "rng = np.random.default_rng(\n"
        ")  # repro-lint: disable=RL001\n"
    )
    assert lint_paths([str(target)], select=["RL001"]) == []


def test_statement_anchors_stay_line_scoped(tmp_path):
    # A comment inside a block must not silence a finding on its header.
    target = tmp_path / "mod.py"
    target.write_text(
        "import numpy as np\n"
        "\n"
        "rng = np.random.default_rng()\n"
        "x = 1  # repro-lint: disable=RL001\n"
    )
    findings = lint_paths([str(target)], select=["RL001"])
    assert [f.rule for f in findings] == ["RL001"]


# -- --changed scoping ------------------------------------------------------


def _init_repo(path):
    for args in (
        ["init", "-q"],
        ["config", "user.email", "lint@test"],
        ["config", "user.name", "lint"],
    ):
        subprocess.run(["git"] + args, cwd=str(path), check=True)


def test_changed_scope_lints_only_touched_files(tmp_path):
    _init_repo(tmp_path)
    src = tmp_path / "src"
    src.mkdir()
    (src / "clean.py").write_text("x = 1\n")
    (src / "dirty.py").write_text("x = 1\n")
    subprocess.run(["git", "add", "-A"], cwd=str(tmp_path), check=True)
    subprocess.run(
        ["git", "commit", "-qm", "seed"], cwd=str(tmp_path), check=True
    )
    # Both files now carry an RL001 finding, but only dirty.py changed.
    (src / "dirty.py").write_text(
        "import numpy as np\nrng = np.random.default_rng()\n"
    )
    proc = run_cli(
        ["run", "--changed", "--no-baseline", "--select", "RL001", "src"],
        cwd=tmp_path,
    )
    assert proc.returncode == 1
    assert "dirty.py" in proc.stdout


def test_changed_scope_empty_set_exits_0(tmp_path):
    _init_repo(tmp_path)
    src = tmp_path / "src"
    src.mkdir()
    (src / "mod.py").write_text("x = 1\n")
    subprocess.run(["git", "add", "-A"], cwd=str(tmp_path), check=True)
    subprocess.run(
        ["git", "commit", "-qm", "seed"], cwd=str(tmp_path), check=True
    )
    proc = run_cli(
        ["run", "--changed", "--no-baseline", "--select", "RL001", "src"],
        cwd=tmp_path,
    )
    assert proc.returncode == 0


def test_changed_scope_falls_back_for_project_rules(tmp_path):
    _init_repo(tmp_path)
    src = tmp_path / "src"
    src.mkdir()
    (src / "mod.py").write_text("x = 1\n")
    subprocess.run(["git", "add", "-A"], cwd=str(tmp_path), check=True)
    subprocess.run(
        ["git", "commit", "-qm", "seed"], cwd=str(tmp_path), check=True
    )
    # No file changed, but RL011 is project-scope: the run must cover
    # the full tree rather than silently analysing nothing.
    proc = run_cli(
        ["run", "--changed", "--no-baseline", "--select", "RL011", "src"],
        cwd=tmp_path,
    )
    assert proc.returncode == 0
    assert "full" in proc.stderr.lower() or "project" in proc.stderr.lower()
