"""Tests for repro.telemetry.timing: stopwatch, spans, module profiler."""

import numpy as np
import pytest

from repro.models import MLP
from repro.telemetry import (
    EventLog,
    MemorySink,
    MetricsRegistry,
    ModuleProfiler,
    SpanTracker,
    Stopwatch,
    named_modules,
)


# -- Stopwatch --------------------------------------------------------------


def test_stopwatch_accumulates():
    watch = Stopwatch()
    assert not watch.running
    watch.start()
    assert watch.running
    first = watch.stop()
    assert first >= 0.0
    watch.start()
    total = watch.stop()
    assert total >= first


def test_stopwatch_elapsed_while_running():
    watch = Stopwatch().start()
    assert watch.elapsed >= 0.0
    watch.stop()


def test_stopwatch_misuse_raises():
    watch = Stopwatch()
    with pytest.raises(RuntimeError):
        watch.stop()
    watch.start()
    with pytest.raises(RuntimeError):
        watch.start()


def test_stopwatch_context_manager_and_reset():
    watch = Stopwatch()
    with watch:
        pass
    assert watch.elapsed > 0.0
    watch.reset()
    assert watch.elapsed == 0.0


# -- Spans ------------------------------------------------------------------


def test_nested_spans_paths_and_durations():
    sink = MemorySink()
    registry = MetricsRegistry()
    tracker = SpanTracker(EventLog(sink, run_id="r"), registry)
    with tracker.span("outer"):
        with tracker.span("inner"):
            pass
    kinds = [(e["kind"], e["path"]) for e in sink.events]
    assert kinds == [
        ("span_begin", "outer"),
        ("span_begin", "outer/inner"),
        ("span_end", "outer/inner"),
        ("span_end", "outer"),
    ]
    ends = {e["path"]: e for e in sink.events if e["kind"] == "span_end"}
    assert ends["outer"]["seconds"] >= ends["outer/inner"]["seconds"] >= 0.0
    assert ends["outer"]["depth"] == 0
    assert ends["outer/inner"]["depth"] == 1
    assert registry.histogram("span_seconds/outer").count == 1
    assert registry.histogram("span_seconds/outer/inner").count == 1


def test_duplicate_leaf_names_get_distinct_histograms():
    # Regression: spans named identically under different parents used to
    # collapse into one `span_seconds/<leaf>` histogram.
    registry = MetricsRegistry()
    tracker = SpanTracker(EventLog(MemorySink(), run_id="r"), registry)
    with tracker.span("pretrain"):
        with tracker.span("epoch"):
            pass
    with tracker.span("ft_train"):
        with tracker.span("epoch"):
            pass
        with tracker.span("epoch"):
            pass
    histograms = registry.snapshot()["histograms"]
    assert "span_seconds/epoch" not in histograms
    assert histograms["span_seconds/pretrain/epoch"]["count"] == 1
    assert histograms["span_seconds/ft_train/epoch"]["count"] == 2


def test_span_closes_on_exception():
    sink = MemorySink()
    tracker = SpanTracker(EventLog(sink, run_id="r"), MetricsRegistry())
    with pytest.raises(RuntimeError):
        with tracker.span("broken"):
            raise RuntimeError("boom")
    assert tracker.depth == 0
    assert sink.events[-1]["kind"] == "span_end"


def test_span_rejects_slash_in_name():
    tracker = SpanTracker()
    with pytest.raises(ValueError):
        with tracker.span("a/b"):
            pass


def test_span_tracker_defaults_are_noop():
    tracker = SpanTracker()  # no events, disabled metrics
    with tracker.span("quiet"):
        pass  # must simply work


# -- Module profiler --------------------------------------------------------


def test_named_modules_covers_tree(rng):
    model = MLP(8, [4], 3, rng=rng)
    names = [name for name, _ in named_modules(model)]
    assert names[0] == "(root)"
    assert any("layer1" in name for name in names)
    assert len(names) == len(list(model.modules()))


def test_module_profiler_records_forward_and_backward(rng):
    model = MLP(8, [4], 3, rng=rng)
    registry = MetricsRegistry()
    profiler = ModuleProfiler(registry)
    images = rng.normal(size=(5, 1, 2, 4))
    with profiler.profile(model):
        assert profiler.attached
        logits = model(images)
        model.backward(np.ones_like(logits) / 5.0)
    assert not profiler.attached
    forward_root = registry.histogram("forward_seconds/(root)")
    assert forward_root.count == 1
    assert forward_root.total >= 0.0
    backward_root = registry.histogram("backward_seconds/(root)")
    assert backward_root.count == 1
    # Some per-layer histogram beyond the root must have fired too.
    per_layer = [
        name
        for name in registry.snapshot()["histograms"]
        if name.startswith("forward_seconds/") and "(root)" not in name
    ]
    assert per_layer


def test_module_profiler_detach_restores_behaviour(rng):
    model = MLP(8, [4], 3, rng=rng)
    registry = MetricsRegistry()
    profiler = ModuleProfiler(registry).attach(model)
    images = rng.normal(size=(2, 1, 2, 4))
    profiled = model(images)
    profiler.detach()
    count_after_detach = registry.histogram("forward_seconds/(root)").count
    plain = model(images)
    np.testing.assert_allclose(profiled, plain)
    assert (
        registry.histogram("forward_seconds/(root)").count
        == count_after_detach
    )


def test_module_profiler_double_attach_raises(rng):
    model = MLP(8, [4], 3, rng=rng)
    profiler = ModuleProfiler(MetricsRegistry()).attach(model)
    with pytest.raises(RuntimeError):
        profiler.attach(model)
    profiler.detach()
