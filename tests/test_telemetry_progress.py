"""Tests for repro.telemetry.progress: heartbeat cadence, ETA, stalls."""

import pytest

from repro import telemetry
from repro.telemetry import MemorySink, ProgressTracker


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


@pytest.fixture(autouse=True)
def _no_leaked_run():
    yield
    telemetry.end_run()


def _tracker(sink, **kwargs):
    run = telemetry.start_run(sink=sink)
    return ProgressTracker(run=run, **kwargs)


def test_heartbeats_are_rate_limited():
    sink = MemorySink()
    clock = FakeClock()
    tracker = _tracker(
        sink, total=100, label="t", min_interval=1.0, clock=clock
    )
    for _ in range(10):
        tracker.update()
        clock.advance(0.2)
    beats = [e for e in sink.events if e["kind"] == "heartbeat"]
    # First update beats immediately; 10 updates over 1.8 s at >= 1 s
    # spacing allow exactly one more.
    assert len(beats) == 2
    assert tracker.heartbeats == 2


def test_heartbeat_reports_throughput_and_eta():
    sink = MemorySink()
    clock = FakeClock()
    tracker = _tracker(
        sink, total=40, label="eta", min_interval=0.0, clock=clock
    )
    clock.advance(2.0)
    tracker.update(10)
    (beat,) = [e for e in sink.events if e["kind"] == "heartbeat"]
    assert beat["completed"] == 10
    assert beat["total"] == 40
    assert beat["elapsed_seconds"] == 2.0
    assert beat["rate_per_second"] == 5.0
    assert beat["eta_seconds"] == 30 / 5.0
    assert beat["label"] == "eta"


def test_finish_emits_final_heartbeat_and_unknown_total_omits_eta():
    sink = MemorySink()
    clock = FakeClock()
    tracker = _tracker(
        sink, total=None, label="open", min_interval=100.0, clock=clock
    )
    clock.advance(1.0)
    tracker.update(3)
    clock.advance(1.0)
    tracker.finish()
    beats = [e for e in sink.events if e["kind"] == "heartbeat"]
    assert len(beats) == 2  # first update + finish, rate limit ignored
    assert beats[-1]["completed"] == 3
    assert beats[-1]["total"] is None
    assert beats[-1]["eta_seconds"] is None


def test_stall_emits_once_and_rearms_on_progress():
    sink = MemorySink()
    clock = FakeClock()
    tracker = _tracker(
        sink, total=10, label="s", min_interval=0.0,
        stall_timeout=5.0, clock=clock,
    )
    assert not tracker.check_stall()
    clock.advance(6.0)
    assert tracker.check_stall()
    assert tracker.check_stall()  # still stalled; no second event
    stalls = [e for e in sink.events if e["kind"] == "progress_stall"]
    assert len(stalls) == 1
    assert stalls[0]["idle_seconds"] == 6.0
    assert stalls[0]["stall_timeout"] == 5.0
    # Progress re-arms the detector; a fresh stall emits again.
    tracker.update()
    assert not tracker.check_stall()
    clock.advance(6.0)
    assert tracker.check_stall()
    assert tracker.stalls == 2
    run = telemetry.current()
    assert run.metrics.snapshot()["counters"]["progress/stalls_total"] == 2


def test_zero_total_never_divides_by_zero():
    sink = MemorySink()
    clock = FakeClock()
    tracker = _tracker(
        sink, total=0, label="empty", min_interval=0.0, clock=clock
    )
    clock.advance(1.0)
    tracker.update(0)  # an empty sweep still ticks
    tracker.finish()
    beats = [e for e in sink.events if e["kind"] == "heartbeat"]
    assert len(beats) == 2
    for beat in beats:
        assert beat["total"] == 0
        assert beat["percent"] is None
        assert beat["eta_seconds"] is None


def test_zero_elapsed_first_sample_omits_rate_and_eta():
    sink = MemorySink()
    clock = FakeClock()
    tracker = _tracker(
        sink, total=10, label="fast", min_interval=0.0, clock=clock
    )
    tracker.update(3)  # clock has not advanced: elapsed == 0
    (beat,) = [e for e in sink.events if e["kind"] == "heartbeat"]
    assert beat["elapsed_seconds"] == 0.0
    assert beat["rate_per_second"] is None
    assert beat["eta_seconds"] is None
    assert beat["percent"] == 30.0


def test_heartbeat_percent_field():
    sink = MemorySink()
    clock = FakeClock()
    tracker = _tracker(
        sink, total=8, label="pct", min_interval=0.0, clock=clock
    )
    clock.advance(1.0)
    tracker.update(2)
    clock.advance(1.0)
    tracker.update(6)
    beats = [e for e in sink.events if e["kind"] == "heartbeat"]
    assert [b["percent"] for b in beats] == [25.0, 100.0]
    # Unknown totals omit the percent rather than guessing.
    open_tracker = ProgressTracker(
        total=None, label="open", run=telemetry.current(),
        min_interval=0.0, clock=clock,
    )
    open_tracker.update()
    assert sink.events[-1]["percent"] is None


def test_disabled_run_emits_nothing():
    tracker = ProgressTracker(
        total=5, label="off", run=telemetry.NULL_RUN, min_interval=0.0
    )
    tracker.update(5)
    tracker.finish()
    assert tracker.check_stall() is False
    assert tracker.heartbeats == 0


def test_validation():
    with pytest.raises(ValueError):
        ProgressTracker(total=-1, label="x", run=telemetry.NULL_RUN)
    with pytest.raises(ValueError):
        ProgressTracker(
            total=1, label="x", run=telemetry.NULL_RUN, min_interval=-1
        )
    with pytest.raises(ValueError):
        ProgressTracker(
            total=1, label="x", run=telemetry.NULL_RUN, stall_timeout=0
        )
    tracker = ProgressTracker(total=1, label="x", run=telemetry.NULL_RUN)
    with pytest.raises(ValueError):
        tracker.update(-1)
