"""Tests for the conventional fault-mitigation baselines."""

import copy

import numpy as np
import pytest

from repro import nn
from repro.baselines import (
    DeviceFaultMap,
    DeviceSpecificRetrainer,
    RedundantWeightProtection,
)
from repro.core import Trainer, evaluate_accuracy
from repro.datasets import ArrayDataset, DataLoader
from repro.models import MLP
from repro.reram import WeightSpaceFaultModel
from repro.reram.deploy import crossbar_parameters


def make_loader(rng, n=100):
    centers = rng.normal(size=(3, 8)) * 3
    labels = rng.integers(0, 3, size=n)
    images = centers[labels] + rng.normal(size=(n, 8)) * 0.3
    return DataLoader(
        ArrayDataset(images.reshape(n, 1, 2, 4), labels), 25,
        shuffle=True, seed=0,
    )


@pytest.fixture
def trained(rng):
    loader = make_loader(rng)
    model = MLP(8, [16], 3, rng=rng)
    opt = nn.SGD(model.parameters(), lr=0.1, momentum=0.9)
    Trainer(model, opt).fit(loader, 8)
    return model, loader


# -- DeviceFaultMap -------------------------------------------------------------


def test_fault_map_covers_all_crossbar_tensors(trained, rng):
    model, _ = trained
    fmap = DeviceFaultMap.sample(model, 0.2, rng)
    names = {name for name, _ in crossbar_parameters(model)}
    assert set(fmap.maps) == names
    assert fmap.fault_count > 0


def test_fault_map_apply_clamps_weights(trained, rng):
    model, _ = trained
    fmap = DeviceFaultMap.sample(model, 0.3, rng)
    clone = copy.deepcopy(model)
    fmap.apply_to(clone, rng)
    diff = False
    for (_, a), (_, b) in zip(
        crossbar_parameters(model), crossbar_parameters(clone)
    ):
        if not np.array_equal(a.data, b.data):
            diff = True
    assert diff


def test_fault_map_apply_missing_tensor_raises(trained, rng):
    model, _ = trained
    fmap = DeviceFaultMap({})
    with pytest.raises(KeyError):
        fmap.apply_to(model, rng)


# -- DeviceSpecificRetrainer ----------------------------------------------------


def test_retrainer_keeps_faulty_positions_clamped(trained, rng):
    model, loader = trained
    fmap = DeviceFaultMap.sample(model, 0.1, rng)
    retrainer = DeviceSpecificRetrainer(model, fmap, rng=rng)
    retrainer.fit(loader, epochs=3, lr=0.05)
    for name, param in crossbar_parameters(model):
        faulty = fmap.maps[name] != 0
        np.testing.assert_array_equal(
            param.data[faulty], retrainer._stuck_values[name][faulty]
        )


def test_retrainer_recovers_accuracy_on_its_device(trained, rng):
    """The defining property: retraining compensates the known map."""
    model, loader = trained
    # A rate high enough to visibly break the (robust) little MLP.
    fmap = DeviceFaultMap.sample(model, 0.4, np.random.default_rng(1))

    broken = copy.deepcopy(model)
    fmap.apply_to(broken, np.random.default_rng(2))
    acc_broken = evaluate_accuracy(broken, loader)
    assert acc_broken < 95.0  # the device defect actually hurts

    adapted = copy.deepcopy(model)
    retrainer = DeviceSpecificRetrainer(
        adapted, fmap, rng=np.random.default_rng(2)
    )
    retrainer.fit(loader, epochs=6, lr=0.05)
    acc_adapted = evaluate_accuracy(adapted, loader)
    assert acc_adapted > acc_broken


def test_retrainer_does_not_transfer_to_other_devices(trained, rng):
    """The paper's versatility argument: a device-specific model gives no
    general protection on a *different* device."""
    from repro.core import evaluate_defect_accuracy

    model, loader = trained
    fmap = DeviceFaultMap.sample(model, 0.15, np.random.default_rng(1))
    adapted = copy.deepcopy(model)
    DeviceSpecificRetrainer(
        adapted, fmap, rng=np.random.default_rng(2)
    ).fit(loader, epochs=5, lr=0.05)

    # On fresh random devices the adapted model behaves like any
    # unprotected model: large degradation remains possible.
    fresh = evaluate_defect_accuracy(
        adapted, loader, 0.15, num_runs=8, rng=np.random.default_rng(3)
    )
    clean = evaluate_accuracy(adapted, loader)
    assert fresh.mean_accuracy < clean  # no free generalisation


# -- RedundantWeightProtection ----------------------------------------------------


def test_redundancy_one_replica_equals_plain_faults(rng):
    w = rng.normal(size=(40, 40))
    protection = RedundantWeightProtection(replicas=1)
    plain = WeightSpaceFaultModel().apply(
        w, 0.2, np.random.default_rng(5)
    )
    redundant = protection.apply(w, 0.2, np.random.default_rng(5))
    np.testing.assert_array_equal(plain, redundant)


def test_redundancy_zero_rate_identity(rng):
    w = rng.normal(size=(10, 10))
    out = RedundantWeightProtection(replicas=3).apply(w, 0.0, rng)
    np.testing.assert_array_equal(out, w)


def test_redundancy_median_suppresses_faults(rng):
    """With r=3 and moderate rates, most effective weights stay exact."""
    w = rng.normal(size=(100, 100))
    p = 0.1
    plain = WeightSpaceFaultModel().apply(w, p, np.random.default_rng(1))
    r3 = RedundantWeightProtection(replicas=3).apply(
        w, p, np.random.default_rng(1)
    )
    plain_changed = np.mean(plain != w)
    r3_changed = np.mean(r3 != w)
    # Median-of-3 only breaks when >= 2 replicas fault: ~3p^2 << p.
    assert r3_changed < plain_changed / 2


def test_redundancy_mean_combiner(rng):
    w = rng.normal(size=(30, 30))
    out = RedundantWeightProtection(replicas=3, combiner="mean").apply(
        w, 0.2, rng
    )
    assert out.shape == w.shape


def test_redundancy_area_overhead():
    assert RedundantWeightProtection(replicas=5).area_overhead == 5.0


def test_redundancy_validation():
    with pytest.raises(ValueError):
        RedundantWeightProtection(replicas=0)
    with pytest.raises(ValueError):
        RedundantWeightProtection(combiner="mode")
