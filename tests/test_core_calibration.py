"""Tests for post-deployment BatchNorm recalibration."""

import copy

import numpy as np
import pytest

from repro import nn
from repro.core import (
    FaultInjector,
    Trainer,
    evaluate_accuracy,
    recalibrate_batchnorm,
)
from repro.datasets import ArrayDataset, DataLoader
from repro.models import MLP, SimpleCNN


@pytest.fixture
def cnn_setup(rng):
    from repro.datasets import make_synthetic_pair

    train_set, test_set = make_synthetic_pair(
        num_classes=4, image_size=8, train_size=200, test_size=120,
        seed=31, noise_sigma=0.4, max_shift=1,
    )
    train = DataLoader(train_set, 40, shuffle=True, seed=0)
    test = DataLoader(test_set, 120, shuffle=False)
    model = SimpleCNN(in_channels=3, num_classes=4, image_size=8, width=8,
                      rng=rng)
    opt = nn.SGD(model.parameters(), lr=0.1, momentum=0.9)
    Trainer(model, opt).fit(train, 8)
    return model, train, test


def test_returns_batch_count(cnn_setup):
    model, train, _ = cnn_setup
    consumed = recalibrate_batchnorm(model, train, num_batches=2)
    assert consumed == 2


def test_full_epoch_when_unlimited(cnn_setup):
    model, train, _ = cnn_setup
    consumed = recalibrate_batchnorm(model, train)
    assert consumed == len(train)


def test_no_bn_model_returns_zero(rng):
    model = MLP(8, [8], 3, rng=rng)  # no batch norm
    loader = DataLoader(
        ArrayDataset(rng.normal(size=(8, 1, 2, 4)),
                     rng.integers(0, 3, size=8)),
        4,
    )
    assert recalibrate_batchnorm(model, loader) == 0


def test_parameters_untouched(cnn_setup):
    model, train, _ = cnn_setup
    before = {n: p.data.copy() for n, p in model.named_parameters()}
    recalibrate_batchnorm(model, train, num_batches=2)
    for n, p in model.named_parameters():
        np.testing.assert_array_equal(p.data, before[n])


def test_buffers_change(cnn_setup, rng):
    model, train, _ = cnn_setup
    # Perturb weights so the statistics genuinely shift.
    injector = FaultInjector(model, rng=rng)
    injector.inject(0.1)
    before = {n: b.copy() for n, b in model.named_buffers()}
    recalibrate_batchnorm(model, train, num_batches=3)
    changed = any(
        not np.allclose(b, before[n]) for n, b in model.named_buffers()
    )
    injector.restore()
    assert changed


def test_restores_mode_and_momentum(cnn_setup):
    model, train, _ = cnn_setup
    model.eval()
    bn = next(
        m for m in model.modules() if isinstance(m, nn.BatchNorm2d)
    )
    original_momentum = bn.momentum
    recalibrate_batchnorm(model, train, num_batches=1, momentum=0.9)
    assert not model.training
    assert bn.momentum == original_momentum


def test_recalibration_recovers_accuracy_under_faults(cnn_setup):
    """The headline behaviour: with faulty weights, refreshed BN stats
    recover accuracy on average across devices."""
    model, train, test = cnn_setup
    rng = np.random.default_rng(3)
    deltas = []
    for _ in range(6):
        faulty = copy.deepcopy(model)
        FaultInjector(faulty, rng=rng).inject(0.05)
        before = evaluate_accuracy(faulty, test)
        recalibrate_batchnorm(faulty, train, momentum=0.3)
        after = evaluate_accuracy(faulty, test)
        deltas.append(after - before)
    assert np.mean(deltas) > -1.0  # at minimum it must not hurt
    # And typically it helps visibly on at least some devices.
    assert max(deltas) > 0.0
