"""The determinism contract: worker count never changes a result.

Each seed-driven Monte Carlo entry point is run serial (workers=0) and
through a real 2-worker process pool; the per-draw accuracies must be
bit-identical, not merely close.  This is the property `docs/PARALLELISM.md`
documents and RL009 protects.
"""

import numpy as np
import pytest

from repro.core import evaluate_defect_accuracy, layer_sensitivity, simulate_fleet
from repro.datasets import DataLoader, make_synthetic_pair
from repro.models import MLP
from repro.parallel import WORKERS_ENV


@pytest.fixture(scope="module")
def model():
    return MLP(48, [16], 4, rng=np.random.default_rng(7))


@pytest.fixture(scope="module")
def loader():
    _, test = make_synthetic_pair(
        num_classes=4, image_size=4, train_size=8, test_size=24,
        seed=0, bandwidth=1, channels=3,
    )
    return DataLoader(test, 24, shuffle=False)


def test_defect_accuracy_identical_across_worker_counts(model, loader):
    runs = [
        evaluate_defect_accuracy(
            model, loader, 0.05, num_runs=6, seed=123, workers=workers
        )
        for workers in (0, 2)
    ]
    for evaluation in runs[1:]:
        assert evaluation.run_accuracies == runs[0].run_accuracies
        assert evaluation.mean_accuracy == runs[0].mean_accuracy
        assert evaluation.seed == 123


def test_defect_accuracy_honours_workers_env(model, loader, monkeypatch):
    serial = evaluate_defect_accuracy(model, loader, 0.05, num_runs=4, seed=9)
    monkeypatch.setenv(WORKERS_ENV, "2")
    from_env = evaluate_defect_accuracy(model, loader, 0.05, num_runs=4, seed=9)
    assert from_env.run_accuracies == serial.run_accuracies


def test_fleet_identical_across_worker_counts(model, loader):
    serial = simulate_fleet(model, loader, 0.05, num_devices=6, seed=42, workers=0)
    pooled = simulate_fleet(model, loader, 0.05, num_devices=6, seed=42, workers=2)
    assert pooled.accuracies == serial.accuracies
    assert pooled.seed == serial.seed == 42


def test_layer_sensitivity_identical_across_worker_counts(model, loader):
    serial = layer_sensitivity(model, loader, 0.1, num_runs=2, seed=5, workers=0)
    pooled = layer_sensitivity(model, loader, 0.1, num_runs=2, seed=5, workers=2)
    assert [s.name for s in pooled] == [s.name for s in serial]
    for a, b in zip(pooled, serial):
        assert a.mean_accuracy == b.mean_accuracy
        assert a.accuracy_drop == b.accuracy_drop


def test_shared_rng_requests_fall_back_to_serial(model, loader):
    # The legacy shared-stream protocol is order-dependent, so a worker
    # request must not change its results — it runs serial either way.
    baseline = evaluate_defect_accuracy(
        model, loader, 0.05, num_runs=4, rng=np.random.default_rng(77)
    )
    with_workers = evaluate_defect_accuracy(
        model, loader, 0.05, num_runs=4, rng=np.random.default_rng(77), workers=2
    )
    assert with_workers.run_accuracies == baseline.run_accuracies
    assert with_workers.seed is None


def test_default_seed_is_recorded_and_rematerialisable(model, loader):
    first = evaluate_defect_accuracy(model, loader, 0.05, num_runs=3)
    assert first.seed is not None
    replay = evaluate_defect_accuracy(
        model, loader, 0.05, num_runs=3, seed=first.seed
    )
    assert replay.run_accuracies == first.run_accuracies
