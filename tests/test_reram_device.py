"""Tests for the ReRAM cell model."""

import numpy as np
import pytest

from repro.reram import ReRAMDeviceModel


def test_default_window_is_sane():
    device = ReRAMDeviceModel()
    assert device.g_off < device.g_on
    assert device.conductance_range == pytest.approx(device.g_on - device.g_off)


def test_level_ladder_endpoints_and_count():
    device = ReRAMDeviceModel(g_off=0.0, g_on=1.0, levels=5)
    ladder = device.level_conductances()
    assert len(ladder) == 5
    np.testing.assert_allclose(ladder, [0.0, 0.25, 0.5, 0.75, 1.0])


def test_program_snaps_to_levels():
    device = ReRAMDeviceModel(g_off=0.0, g_on=1.0, levels=5)
    out = device.program(np.array([0.1, 0.3, 0.6, 0.9]))
    np.testing.assert_allclose(out, [0.0, 0.25, 0.5, 1.0])


def test_program_clips_out_of_window():
    device = ReRAMDeviceModel(g_off=0.0, g_on=1.0, levels=3)
    out = device.program(np.array([-5.0, 5.0]))
    np.testing.assert_allclose(out, [0.0, 1.0])


def test_program_idempotent():
    device = ReRAMDeviceModel(g_off=0.0, g_on=1.0, levels=9)
    rng = np.random.default_rng(0)
    g = device.program(rng.uniform(0, 1, size=20))
    np.testing.assert_allclose(device.program(g), g)


def test_read_noiseless_is_exact():
    device = ReRAMDeviceModel()
    g = np.array([1e-5, 1e-4])
    np.testing.assert_array_equal(device.read(g), g)


def test_read_noise_is_multiplicative_lognormal(rng):
    device = ReRAMDeviceModel(read_noise_sigma=0.1)
    g = np.full(20000, 1e-4)
    noisy = device.read(g, rng)
    ratio = noisy / g
    assert abs(np.log(ratio).mean()) < 0.01
    assert abs(np.log(ratio).std() - 0.1) < 0.01


@pytest.mark.parametrize(
    "kwargs",
    [
        {"g_off": -1.0},
        {"g_on": 1e-6, "g_off": 2e-6},
        {"levels": 1},
        {"read_noise_sigma": -0.1},
    ],
)
def test_validation(kwargs):
    with pytest.raises(ValueError):
        ReRAMDeviceModel(**kwargs)
