"""Tests for pruning: masks, magnitude, ADMM."""

import numpy as np
import pytest

from repro import nn
from repro.datasets import ArrayDataset, DataLoader
from repro.models import MLP
from repro.pruning import (
    ADMMConfig,
    ADMMPruner,
    apply_masks,
    finetune_pruned,
    magnitude_mask,
    magnitude_prune,
    model_sparsity,
    project_sparse,
    prunable_parameters,
    sparsity,
)


def make_loader(rng, n=80):
    centers = rng.normal(size=(3, 8)) * 3
    labels = rng.integers(0, 3, size=n)
    images = centers[labels] + rng.normal(size=(n, 8)) * 0.3
    return DataLoader(ArrayDataset(images.reshape(n, 1, 2, 4), labels), 20,
                      shuffle=True, seed=0)


# -- masks -------------------------------------------------------------------


def test_magnitude_mask_exact_sparsity(rng):
    w = rng.normal(size=(10, 10))
    mask = magnitude_mask(w, 0.3)
    assert mask.sum() == 70


def test_magnitude_mask_prunes_smallest(rng):
    w = np.array([0.1, -5.0, 0.01, 3.0])
    mask = magnitude_mask(w, 0.5)
    np.testing.assert_array_equal(mask, [0.0, 1.0, 0.0, 1.0])


def test_magnitude_mask_zero_sparsity(rng):
    mask = magnitude_mask(rng.normal(size=(4, 4)), 0.0)
    np.testing.assert_array_equal(mask, 1.0)


def test_magnitude_mask_validation(rng):
    with pytest.raises(ValueError):
        magnitude_mask(np.ones(4), 1.0)


def test_sparsity_helpers(rng):
    assert sparsity(np.array([0.0, 1.0, 0.0, 2.0])) == 0.5
    assert sparsity(np.array([])) == 0.0


def test_apply_masks(rng):
    model = MLP(8, [4], 2, rng=rng)
    name, param = prunable_parameters(model)[0]
    mask = np.zeros_like(param.data)
    apply_masks(model, {name: mask})
    np.testing.assert_array_equal(param.data, 0.0)


def test_apply_masks_validation(rng):
    model = MLP(8, [4], 2, rng=rng)
    with pytest.raises(KeyError):
        apply_masks(model, {"nope": np.zeros((1, 1))})
    name, param = prunable_parameters(model)[0]
    with pytest.raises(ValueError):
        apply_masks(model, {name: np.zeros((1, 1))})


# -- magnitude pruning -----------------------------------------------------------


def test_magnitude_prune_per_layer_sparsity(rng):
    model = MLP(8, [16], 3, rng=rng)
    magnitude_prune(model, 0.5, per_layer=True)
    for name, param in prunable_parameters(model):
        assert abs(sparsity(param.data) - 0.5) < 0.05, name
    assert abs(model_sparsity(model) - 0.5) < 0.05


def test_magnitude_prune_global_overall_sparsity(rng):
    model = MLP(8, [16], 3, rng=rng)
    magnitude_prune(model, 0.6, per_layer=False)
    assert abs(model_sparsity(model) - 0.6) < 0.05


def test_magnitude_prune_keeps_largest(rng):
    model = MLP(8, [16], 3, rng=rng)
    param = prunable_parameters(model)[0][1]
    largest = np.max(np.abs(param.data))
    magnitude_prune(model, 0.9, per_layer=True)
    assert np.max(np.abs(param.data)) == largest


def test_finetune_respects_masks(rng):
    model = MLP(8, [16], 3, rng=rng)
    loader = make_loader(rng)
    masks = magnitude_prune(model, 0.5)
    finetune_pruned(model, masks, loader, epochs=3, lr=0.05)
    for name, param in prunable_parameters(model):
        zero_positions = masks[name] == 0
        np.testing.assert_array_equal(param.data[zero_positions], 0.0)


def test_finetune_improves_pruned_accuracy(rng):
    from repro.core import evaluate_accuracy

    model = MLP(8, [24], 3, rng=rng)
    loader = make_loader(rng, n=120)
    # Train first so pruning actually hurts.
    opt = nn.SGD(model.parameters(), lr=0.1, momentum=0.9)
    from repro.core import Trainer

    Trainer(model, opt).fit(loader, 8)
    masks = magnitude_prune(model, 0.7)
    before = evaluate_accuracy(model, loader)
    finetune_pruned(model, masks, loader, epochs=5, lr=0.05)
    after = evaluate_accuracy(model, loader)
    assert after >= before


# -- ADMM -------------------------------------------------------------------------


def test_project_sparse_is_projection(rng):
    w = rng.normal(size=(8, 8))
    z = project_sparse(w, 0.5)
    assert sparsity(z) >= 0.5
    # Projection keeps the largest magnitudes: the kept set's min beats
    # the dropped set's max.
    kept = np.abs(z[z != 0])
    dropped_mask = (z == 0) & (w != 0)
    if kept.size and dropped_mask.any():
        assert kept.min() >= np.abs(w[dropped_mask]).max() - 1e-12


def test_project_sparse_zero_ratio_identity(rng):
    w = rng.normal(size=(4, 4))
    np.testing.assert_array_equal(project_sparse(w, 0.0), w)


def test_project_sparse_validation():
    with pytest.raises(ValueError):
        project_sparse(np.ones(4), 1.0)


def test_admm_config_validation():
    with pytest.raises(ValueError):
        ADMMConfig(sparsity=1.0)
    with pytest.raises(ValueError):
        ADMMConfig(rho=0.0)
    with pytest.raises(ValueError):
        ADMMConfig(admm_rounds=0)


def test_admm_reaches_target_sparsity(rng):
    model = MLP(8, [16], 3, rng=rng)
    loader = make_loader(rng)
    config = ADMMConfig(
        sparsity=0.6, admm_rounds=2, epochs_per_round=1,
        finetune_epochs=2, lr=0.05, finetune_lr=0.05,
    )
    ADMMPruner(model, config).run(loader)
    assert abs(model_sparsity(model) - 0.6) < 0.05


def test_admm_model_still_functional(rng):
    from repro.core import evaluate_accuracy

    model = MLP(8, [24], 3, rng=rng)
    loader = make_loader(rng, n=120)
    opt = nn.SGD(model.parameters(), lr=0.1, momentum=0.9)
    from repro.core import Trainer

    Trainer(model, opt).fit(loader, 8)
    config = ADMMConfig(
        sparsity=0.5, admm_rounds=2, epochs_per_round=2,
        finetune_epochs=3, lr=0.02, finetune_lr=0.02,
    )
    ADMMPruner(model, config).run(loader)
    acc = evaluate_accuracy(model, loader)
    assert acc > 60.0  # still much better than the 33% chance level


def test_admm_outperforms_or_matches_oneshot_before_finetune(rng):
    """ADMM's soft constraint should leave the kept weights closer to a
    trained optimum — at minimum it must not be catastrophically worse."""
    from repro.core import Trainer, evaluate_accuracy

    loader = make_loader(rng, n=120)
    base = MLP(8, [24], 3, rng=np.random.default_rng(5))
    opt = nn.SGD(base.parameters(), lr=0.1, momentum=0.9)
    Trainer(base, opt).fit(loader, 8)

    import copy

    oneshot = copy.deepcopy(base)
    magnitude_prune(oneshot, 0.7)
    acc_oneshot = evaluate_accuracy(oneshot, loader)

    admm = copy.deepcopy(base)
    config = ADMMConfig(
        sparsity=0.7, admm_rounds=3, epochs_per_round=2,
        finetune_epochs=0 or 1, lr=0.02, finetune_lr=0.02,
    )
    ADMMPruner(admm, config).run(loader)
    acc_admm = evaluate_accuracy(admm, loader)
    assert acc_admm >= acc_oneshot - 10.0
