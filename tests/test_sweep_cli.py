"""Tests for the python -m repro.sweep command-line interface."""

import json

import pytest

from repro.sweep.cli import main

GOOD = {
    "name": "cli",
    "axes": {
        "arch": ["mlp"],
        "p_sa": [0.05],
        "variant": ["baseline", "one_shot"],
    },
    "seeds": [0],
    "profiles": {
        "smoke": {
            "train_size": 48,
            "train_size_large": 48,
            "test_size": 32,
            "batch_size": 16,
            "defect_runs": 2,
            "num_classes_small": 4,
            "num_classes_large": 4,
        }
    },
}


@pytest.fixture()
def spec_path(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(GOOD))
    return str(path)


def test_check_ok(spec_path, capsys):
    assert main(["check", spec_path]) == 0
    out = capsys.readouterr().out
    assert "ok: sweep cli" in out and "2 cell(s)" in out


def test_check_strict_rejects_unknown_key(tmp_path, capsys):
    raw = dict(GOOD, typo_knob=1)
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(raw))
    assert main(["check", str(path)]) == 0
    assert "typo_knob" in capsys.readouterr().err
    assert main(["check", str(path), "--strict"]) == 1
    assert "typo_knob" in capsys.readouterr().err


def test_check_invalid_spec_exits_1(tmp_path, capsys):
    raw = dict(GOOD, axes={"arch": ["mlp"], "p_sa": [2.0], "variant": ["baseline"]})
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(raw))
    assert main(["check", str(path)]) == 1
    assert "stuck-at rate" in capsys.readouterr().err


def test_check_unreadable_spec_exits_2(tmp_path, capsys):
    missing = str(tmp_path / "nope.json")
    assert main(["check", missing]) == 2
    garbled = tmp_path / "bad.json"
    garbled.write_text("{nope")
    assert main(["check", str(garbled)]) == 2


def test_run_refuses_invalid_spec(tmp_path, capsys):
    raw = dict(GOOD, typo_knob=1)  # run implies --strict
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(raw))
    assert main(["run", str(path), "--sweep-dir", str(tmp_path / "sw")]) == 1
    assert "run refused" in capsys.readouterr().err


def test_run_limit_status_resume_report(spec_path, tmp_path, capsys):
    sweep_dir = str(tmp_path / "sw")
    # "interrupt" after one cell
    assert main([
        "run", spec_path, "--sweep-dir", sweep_dir, "--profile", "smoke",
        "--workers", "0", "--limit", "1",
    ]) == 0
    assert "re-run to resume" in capsys.readouterr().out
    assert main([
        "status", spec_path, "--sweep-dir", sweep_dir, "--profile", "smoke",
    ]) == 0
    assert "1/2" in capsys.readouterr().out
    # resume the remaining cell
    assert main([
        "run", spec_path, "--sweep-dir", sweep_dir, "--profile", "smoke",
        "--workers", "0",
    ]) == 0
    out = capsys.readouterr().out
    assert "Stability-Score leaderboard" in out
    assert "leaderboard written to" in out
    assert main(["report", sweep_dir, "--profile", "smoke"]) == 0
    assert "Stability-Score leaderboard" in capsys.readouterr().out


def test_report_without_cells_exits_2(tmp_path, capsys):
    assert main(["report", str(tmp_path), "--profile", "smoke"]) == 2
    assert "no completed" in capsys.readouterr().err
