"""Tests for repro.nn.cost: hand-computed params/MACs/FLOPs/footprints."""

import numpy as np
import pytest

from repro import nn
from repro.nn.cost import (
    ACTIVATION_BYTES,
    CELLS_PER_WEIGHT,
    LayerCost,
    capture_shapes,
    conv2d_output_shape,
    crossbar_footprint,
    model_cost,
)


def _rng():
    return np.random.default_rng(0)


# -- per-layer hand computations ---------------------------------------------


def test_conv2d_cost_hand_computed():
    # Conv2d(3 -> 8, k=3, pad=1) at (1, 3, 32, 32): output (1, 8, 32, 32).
    model = nn.Conv2d(3, 8, 3, padding=1, rng=_rng())
    cost = model_cost(model, (1, 3, 32, 32))
    (layer,) = cost.layers
    assert layer.kind == "Conv2d"
    assert layer.output_shape == (1, 8, 32, 32)
    assert layer.params == 3 * 3 * 3 * 8 + 8  # weights + bias = 224
    out_elems = 8 * 32 * 32
    assert layer.macs == out_elems * 3 * 9  # 221184
    assert layer.flops == 2 * layer.macs + out_elems  # 450560 (bias adds)
    assert layer.crossbar_cells == CELLS_PER_WEIGHT * 3 * 3 * 3 * 8
    assert layer.activation_elems == out_elems
    assert layer.activation_bytes == out_elems * ACTIVATION_BYTES


def test_linear_cost_hand_computed():
    model = nn.Linear(16, 4, rng=_rng())
    cost = model_cost(model, (2, 16))
    (layer,) = cost.layers
    assert layer.params == 16 * 4 + 4
    assert layer.macs == 2 * 4 * 16  # batch included
    assert layer.flops == 2 * layer.macs + 2 * 4
    assert layer.crossbar_cells == CELLS_PER_WEIGHT * 16 * 4


def test_norm_activation_and_pool_costs():
    model = nn.Sequential(
        nn.BatchNorm2d(3),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.GlobalAvgPool2d(),
    )
    cost = model_cost(model, (1, 3, 8, 8))
    by_kind = {layer.kind: layer for layer in cost.layers}
    elems = 3 * 8 * 8
    assert by_kind["BatchNorm2d"].flops == 2 * elems  # scale + shift
    assert by_kind["BatchNorm2d"].macs == 0
    assert by_kind["ReLU"].flops == elems
    pooled = 3 * 4 * 4
    assert by_kind["MaxPool2d"].flops == pooled * 4  # one FLOP per window elem
    assert by_kind["GlobalAvgPool2d"].flops == pooled  # its input elements
    assert by_kind["GlobalAvgPool2d"].output_shape == (1, 3)
    # None of these own crossbar-resident weights.
    assert cost.total_crossbar_cells == 0


# -- aggregates --------------------------------------------------------------


def test_totals_sum_layers_and_round_trip_json():
    model = nn.Sequential(
        nn.Conv2d(3, 8, 3, padding=1, rng=_rng()),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Linear(8, 4, rng=_rng()),
    )
    cost = model_cost(model, (1, 3, 16, 16))
    assert cost.total_params == sum(l.params for l in cost.layers)
    assert cost.total_macs == sum(l.macs for l in cost.layers)
    assert cost.total_flops == sum(l.flops for l in cost.layers)
    doc = cost.as_dict()
    assert doc["params"] == cost.total_params
    assert doc["input_shape"] == [1, 3, 16, 16]
    assert len(doc["layers"]) == 4
    import json

    json.dumps(doc)  # must be JSON-serialisable as emitted by telemetry


def test_totals_match_footprint_and_model_params():
    model = nn.Sequential(
        nn.Conv2d(3, 8, 3, padding=1, rng=_rng()),
        nn.BatchNorm2d(8),
        nn.Linear(8, 4, rng=_rng()),
    )
    footprint = crossbar_footprint(model)
    total_params = sum(p.size for _, p in model.named_parameters())
    assert footprint["params"] == total_params
    weights = 3 * 3 * 3 * 8 + 8 * 4  # conv + linear weights only
    assert footprint["crossbar_weights"] == weights
    assert footprint["crossbar_cells"] == CELLS_PER_WEIGHT * weights


# -- shape capture -----------------------------------------------------------


def test_capture_shapes_restores_model_state():
    model = nn.Sequential(nn.Conv2d(3, 4, 3, padding=1, rng=_rng()), nn.ReLU())
    model.train(True)
    shapes = capture_shapes(model, (1, 3, 8, 8))
    assert shapes["layer0"] == ((1, 3, 8, 8), (1, 4, 8, 8))
    assert model.training  # mode restored
    # Shims removed: forward resolves through the class again.
    x = np.zeros((1, 3, 8, 8))
    assert model(x).shape == (1, 4, 8, 8)
    assert "forward" not in model._modules["layer0"].__dict__


def test_capture_shapes_handles_residual_wiring():
    block = nn.Residual(
        nn.Conv2d(4, 4, 3, padding=1, rng=_rng()), nn.Identity()
    )
    shapes = capture_shapes(block, (1, 4, 8, 8))
    assert all(out == (1, 4, 8, 8) for _, out in shapes.values())


def test_conv2d_output_shape_matches_forward():
    layer = nn.Conv2d(3, 6, 3, stride=2, padding=1, rng=_rng())
    x = np.zeros((2, 3, 15, 15))
    assert conv2d_output_shape(layer, x.shape) == layer(x).shape


def test_resnet8_cost_is_consistent():
    from repro.models import resnet8

    model = resnet8(num_classes=10, rng=_rng())
    cost = model_cost(model, (1, 3, 16, 16))
    footprint = crossbar_footprint(model)
    assert cost.total_params == footprint["params"]
    assert cost.total_crossbar_cells == footprint["crossbar_cells"]
    assert cost.total_macs > 0


def test_layer_cost_is_immutable():
    layer = LayerCost(
        name="l", kind="Linear", params=1, macs=1, flops=2,
        activation_elems=1, crossbar_cells=2, output_shape=(1, 1),
    )
    with pytest.raises(Exception):
        layer.params = 5
