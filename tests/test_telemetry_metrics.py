"""Tests for repro.telemetry.metrics: instruments and the registry."""

import pytest

from repro.telemetry import MetricsRegistry


def test_counter_increments():
    registry = MetricsRegistry()
    counter = registry.counter("fault_draws_total")
    counter.inc()
    counter.inc(5)
    assert counter.value == 6


def test_counter_rejects_negative():
    counter = MetricsRegistry().counter("c")
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_holds_last_value():
    gauge = MetricsRegistry().gauge("epoch_loss")
    assert gauge.value is None
    gauge.set(2.5)
    gauge.set(1.25)
    assert gauge.value == 1.25


def test_histogram_statistics():
    hist = MetricsRegistry().histogram("h")
    for value in [1.0, 2.0, 3.0, 4.0]:
        hist.observe(value)
    assert hist.count == 4
    assert hist.total == 10.0
    assert hist.mean == 2.5
    assert hist.percentile(0) == 1.0
    assert hist.percentile(100) == 4.0
    assert hist.percentile(50) == 2.5


def test_histogram_percentile_validation():
    hist = MetricsRegistry().histogram("h")
    hist.observe(1.0)
    with pytest.raises(ValueError):
        hist.percentile(101)
    empty = MetricsRegistry().histogram("empty")
    with pytest.raises(ValueError):
        empty.percentile(50)
    with pytest.raises(ValueError):
        empty.mean


def test_histogram_summary_shape():
    registry = MetricsRegistry()
    hist = registry.histogram("h")
    assert hist.summary() == {"count": 0, "sum": 0.0}
    for value in range(1, 101):
        hist.observe(float(value))
    summary = hist.summary()
    assert summary["count"] == 100
    assert summary["min"] == 1.0
    assert summary["max"] == 100.0
    assert summary["p50"] == pytest.approx(50.5)
    assert summary["p95"] > summary["p50"]


def test_registry_get_or_create_identity():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.histogram("b") is registry.histogram("b")
    assert registry.counter("a") is not registry.counter("a2")


def test_registry_type_conflict_raises():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ValueError):
        registry.gauge("x")
    with pytest.raises(ValueError):
        registry.histogram("x")


def test_snapshot_is_json_friendly():
    import json

    registry = MetricsRegistry()
    registry.counter("c").inc(3)
    registry.gauge("g").set(0.5)
    registry.histogram("h").observe(1.0)
    snapshot = registry.snapshot()
    assert snapshot["counters"] == {"c": 3}
    assert snapshot["gauges"] == {"g": 0.5}
    assert snapshot["histograms"]["h"]["count"] == 1
    json.dumps(snapshot)  # must serialise


def test_reset_clears_instruments():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    registry.reset()
    assert registry.counter("c").value == 0


def test_histogram_reservoir_bounds_memory():
    from repro.telemetry.metrics import Histogram

    hist = Histogram("h", max_samples=16)
    for value in range(1000):
        hist.observe(float(value))
    assert len(hist.values) == 16  # bounded
    assert hist.count == 1000  # exact
    assert hist.total == float(sum(range(1000)))  # exact
    assert hist.mean == pytest.approx(499.5)  # exact
    assert hist.subsampled
    summary = hist.summary()
    assert summary["count"] == 1000
    assert summary["min"] == 0.0  # exact extremes survive sampling
    assert summary["max"] == 999.0
    assert summary["samples"] == 16
    assert 0.0 <= summary["p50"] <= 999.0


def test_histogram_below_capacity_is_exact_and_unflagged():
    from repro.telemetry.metrics import DEFAULT_RESERVOIR_SIZE, Histogram

    hist = Histogram("h")
    assert hist.max_samples == DEFAULT_RESERVOIR_SIZE
    for value in range(100):
        hist.observe(float(value))
    assert not hist.subsampled
    assert "samples" not in hist.summary()
    assert sorted(hist.values) == [float(v) for v in range(100)]


def test_histogram_reservoir_is_deterministic():
    from repro.telemetry.metrics import Histogram

    def fill(name):
        hist = Histogram(name, max_samples=8)
        for value in range(500):
            hist.observe(float(value))
        return hist.values

    assert fill("same") == fill("same")  # same name -> same reservoir
    assert fill("same") != fill("other")  # independent per-name streams


def test_reservoir_does_not_consume_policy_stream():
    """Filling a histogram must not perturb repro.seeding defaults."""
    from repro import seeding
    from repro.telemetry.metrics import Histogram

    seeding.reseed()
    before = seeding.resolve_rng().random()
    seeding.reseed()
    hist = Histogram("perturbation-check", max_samples=4)
    for value in range(100):
        hist.observe(float(value))
    after = seeding.resolve_rng().random()
    seeding.reseed()
    assert before == after


def test_merge_preserves_exact_aggregates_of_subsampled_dump():
    registry = MetricsRegistry()
    source = registry.histogram("h")
    source.max_samples = 8
    for value in range(200):
        source.observe(float(value))
    target_registry = MetricsRegistry()
    target_registry.merge(registry.dump())
    target = target_registry.histogram("h")
    assert target.count == 200
    assert target.total == float(sum(range(200)))
    assert target.summary()["min"] == 0.0
    assert target.summary()["max"] == 199.0
    assert len(target.values) <= target.max_samples


def test_disabled_registry_is_noop():
    registry = MetricsRegistry(enabled=False)
    counter = registry.counter("c")
    counter.inc(10)
    assert counter.value == 0
    gauge = registry.gauge("g")
    gauge.set(1.0)
    assert gauge.value is None
    hist = registry.histogram("h")
    hist.observe(1.0)
    assert hist.count == 0
    assert registry.snapshot() == {
        "counters": {},
        "gauges": {},
        "histograms": {},
    }
