"""Golden-file test for the SARIF 2.1.0 report format.

The document is built from hand-made findings and rules (no tree scan),
so the golden bytes are fully deterministic: any change to the SARIF
shape shows up as a readable diff against ``tests/data/lint_sarif.json``.
"""

import json
import os
import subprocess
import sys

from repro.lint.findings import ERROR, WARNING, Finding
from repro.lint.registry import LintRule
from repro.lint.sarif import build_sarif

GOLDEN = os.path.join(os.path.dirname(__file__), "data", "lint_sarif.json")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _fixture_document():
    rules = [
        LintRule(
            id="RL099",
            name="fixture-warning",
            severity=WARNING,
            scope="file",
            check=lambda source: (),
            description="fixture warning rule",
            rationale="keeps the golden file independent of real rules",
        ),
        LintRule(
            id="RL098",
            name="fixture-error",
            severity=ERROR,
            scope="file",
            check=lambda source: (),
            description="fixture error rule",
        ),
    ]
    new = [
        Finding(
            rule="RL098",
            severity=ERROR,
            path="pkg/mod.py",
            line=3,
            col=4,
            message="fixture error finding",
            snippet="x = broken()",
        )
    ]
    baselined = [
        Finding(
            rule="RL099",
            severity=WARNING,
            path="pkg/old.py",
            line=10,
            col=0,
            message="fixture baselined finding",
            snippet="legacy()",
        )
    ]
    return build_sarif(rules, new, baselined)


def test_sarif_matches_golden_file():
    rendered = json.dumps(_fixture_document(), indent=2) + "\n"
    with open(GOLDEN, "r", encoding="utf-8") as handle:
        assert rendered == handle.read()


def test_sarif_shape_and_suppressions():
    doc = _fixture_document()
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    # Rules are id-sorted regardless of registration order.
    assert [r["id"] for r in run["tool"]["driver"]["rules"]] == [
        "RL098",
        "RL099",
    ]
    new_result, baselined_result = run["results"]
    assert "suppressions" not in new_result
    assert baselined_result["suppressions"][0]["kind"] == "external"
    region = new_result["locations"][0]["physicalLocation"]["region"]
    assert region == {"startLine": 3, "startColumn": 5}  # col is 1-based
    assert new_result["partialFingerprints"]["reproLint/v1"]


def test_cli_sarif_output_parses(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("import numpy as np\nrng = np.random.default_rng()\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", "run", "--format", "sarif",
         "--no-baseline", str(target)],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": os.path.join(REPO_ROOT, "src")},
    )
    assert proc.returncode == 1
    doc = json.loads(proc.stdout)
    results = doc["runs"][0]["results"]
    assert any(r["ruleId"] == "RL001" for r in results)
