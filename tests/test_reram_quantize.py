"""Tests for symmetric weight quantisation."""

import numpy as np
import pytest

from repro.reram import UniformQuantizer, quantize_symmetric


def test_quantize_symmetric_grid():
    w = np.array([-1.0, -0.3, 0.0, 0.3, 1.0])
    out = quantize_symmetric(w, levels=3, w_max=1.0)  # step = 0.5
    np.testing.assert_allclose(out, [-1.0, -0.5, 0.0, 0.5, 1.0])


def test_quantize_clips_beyond_w_max():
    out = quantize_symmetric(np.array([2.0, -2.0]), levels=5, w_max=1.0)
    np.testing.assert_allclose(out, [1.0, -1.0])


def test_quantize_error_bounded_by_half_step(rng):
    w = rng.uniform(-1, 1, size=1000)
    levels = 17
    out = quantize_symmetric(w, levels=levels, w_max=1.0)
    step = 1.0 / (levels - 1)
    assert np.max(np.abs(out - w)) <= step / 2 + 1e-12


def test_quantize_preserves_zero():
    out = quantize_symmetric(np.zeros(5), levels=8, w_max=1.0)
    np.testing.assert_array_equal(out, 0.0)


def test_quantize_validation():
    with pytest.raises(ValueError):
        quantize_symmetric(np.ones(2), levels=1, w_max=1.0)
    with pytest.raises(ValueError):
        quantize_symmetric(np.ones(2), levels=4, w_max=0.0)


def test_uniform_quantizer_dynamic_range(rng):
    q = UniformQuantizer(levels=16)
    w = rng.normal(size=100)
    out = q(w)
    assert np.max(np.abs(out)) <= np.max(np.abs(w)) + 1e-12
    # The max-magnitude weight maps to itself (it defines w_max).
    idx = np.argmax(np.abs(w))
    assert out[idx] == pytest.approx(w[idx])


def test_uniform_quantizer_all_zero_input():
    q = UniformQuantizer()
    np.testing.assert_array_equal(q(np.zeros(4)), 0.0)


def test_quantization_step():
    q = UniformQuantizer(levels=11)
    assert q.quantization_step(1.0) == pytest.approx(0.1)


def test_quantizer_idempotent(rng):
    q = UniformQuantizer(levels=8)
    w = rng.normal(size=50)
    once = q(w, w_max=2.0)
    twice = q(once, w_max=2.0)
    np.testing.assert_allclose(once, twice)
