"""Tests for repro.telemetry.trace: Chrome trace-event export."""

import json
import os

import pytest

from repro import telemetry
from repro.telemetry import build_trace, validate_trace, write_trace
from repro.telemetry.trace import INSTANT_KINDS, export_run_trace


def _span_end(path, seconds, ts, **extra):
    name = path.split("/")[-1]
    event = {
        "kind": "span_end",
        "run_id": "r",
        "seq": 0,
        "ts": ts,
        "name": name,
        "path": path,
        "depth": path.count("/"),
        "seconds": seconds,
    }
    event.update(extra)
    return event


def test_span_end_becomes_complete_event():
    events = [
        {"kind": "run_start", "run_id": "r", "seq": 0, "ts": 100.0,
         "pid": 42, "config": {}},
        _span_end("outer", seconds=2.0, ts=103.0),
    ]
    trace = build_trace(events)
    assert validate_trace(trace) == []
    slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert len(slices) == 1
    x = slices[0]
    assert x["name"] == "outer"
    assert x["pid"] == 42
    # begin = end - seconds, microseconds relative to the earliest event
    assert x["ts"] == pytest.approx((103.0 - 2.0 - 100.0) * 1e6)
    assert x["dur"] == pytest.approx(2.0 * 1e6)
    assert x["args"]["path"] == "outer"


def test_trace_timestamps_are_clamped_non_negative():
    # A span whose reconstructed begin predates the earliest event.
    events = [_span_end("warmup", seconds=10.0, ts=101.0)]
    trace = build_trace(events)
    assert validate_trace(trace) == []
    x = next(e for e in trace["traceEvents"] if e["ph"] == "X")
    assert x["ts"] == 0.0


def test_worker_spans_get_their_own_process_lane():
    events = [
        {"kind": "run_start", "run_id": "r", "seq": 0, "ts": 100.0,
         "pid": 1, "config": {}},
        _span_end("outer", seconds=1.0, ts=102.0),
        _span_end(
            "worker_chunk", seconds=0.5, ts=105.0,
            worker_pid=77, worker_ts=101.5,
        ),
    ]
    trace = build_trace(events)
    assert validate_trace(trace) == []
    worker = next(
        e for e in trace["traceEvents"]
        if e["ph"] == "X" and e["name"] == "worker_chunk"
    )
    assert worker["pid"] == 77
    # Placed by the worker's own clock (101.5), not the parent merge time.
    assert worker["ts"] == pytest.approx((101.5 - 0.5 - 100.0) * 1e6)
    meta = {
        e["pid"]: e["args"]["name"]
        for e in trace["traceEvents"]
        if e["ph"] == "M"
    }
    assert meta[1] == "main"
    assert meta[77] == "worker 77"


def test_instant_kinds_become_instant_events():
    events = [
        {"kind": "fault_inject", "run_id": "r", "seq": 0, "ts": 100.0,
         "p_sa": 0.05, "sa0": 3, "sa1": 17},
        {"kind": "defect_draw", "run_id": "r", "seq": 1, "ts": 100.1,
         "p_sa": 0.05, "accuracy": 90.0},  # high-cardinality: excluded
    ]
    assert "fault_inject" in INSTANT_KINDS
    assert "defect_draw" not in INSTANT_KINDS
    trace = build_trace(events)
    assert validate_trace(trace) == []
    instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
    assert [e["name"] for e in instants] == ["fault_inject"]
    assert instants[0]["s"] == "p"
    assert instants[0]["args"]["sa1"] == 17


def test_validate_trace_flags_schema_violations():
    assert validate_trace([]) == ["trace document is not a JSON object"]
    assert validate_trace({}) == ["traceEvents is missing or not an array"]
    bad = {
        "traceEvents": [
            {"name": "a", "ph": "Z", "ts": 0, "pid": 0, "tid": 0},
            {"name": "b", "ph": "X", "ts": -1.0, "pid": 0, "tid": 0,
             "dur": 1.0},
            {"name": "c", "ph": "X", "ts": 0, "pid": "zero", "tid": 0,
             "dur": 1.0},
            {"name": "d", "ph": "X", "ts": 0, "pid": 0, "tid": 0},
            {"name": "e", "ph": "i", "ts": 0, "pid": 0, "tid": 0,
             "s": "bogus"},
            {"name": "process_name", "ph": "M", "ts": 0, "pid": 0,
             "tid": 0, "args": {}},
            {"name": "", "ph": "i", "ts": 0, "pid": 0, "tid": 0, "s": "g"},
        ]
    }
    problems = validate_trace(bad)
    assert len(problems) == 7
    assert any("unknown ph" in p for p in problems)
    assert any("non-negative" in p for p in problems)
    assert any("pid must be an integer" in p for p in problems)
    assert any("needs non-negative dur" in p for p in problems)
    assert any("scope" in p for p in problems)
    assert any("args.name" in p for p in problems)


def test_write_trace_round_trips(tmp_path):
    path = str(tmp_path / "trace.json")
    events = [_span_end("s", seconds=0.1, ts=10.0)]
    written = write_trace(events, path)
    with open(path) as handle:
        loaded = json.load(handle)
    assert loaded == written
    assert loaded["displayTimeUnit"] == "ms"
    assert validate_trace(loaded) == []


def test_session_close_emits_valid_trace(tmp_path):
    with telemetry.session(str(tmp_path), config={"scale": "test"}) as run:
        with run.span("outer"):
            with run.span("inner"):
                pass
        run_dir = run.directory
    trace_path = os.path.join(run_dir, "trace.json")
    assert os.path.isfile(trace_path)
    with open(trace_path) as handle:
        trace = json.load(handle)
    assert validate_trace(trace) == []
    names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
    assert {"outer", "inner"} <= names


def test_export_survives_corrupt_trailing_line(tmp_path):
    with telemetry.session(str(tmp_path)) as run:
        with run.span("work"):
            pass
        run_dir = run.directory
    with open(os.path.join(run_dir, "events.jsonl"), "a") as handle:
        handle.write('{"kind": "span_end", "trunc')
    trace_path = export_run_trace(run_dir)
    with open(trace_path) as handle:
        trace = json.load(handle)
    assert validate_trace(trace) == []
    assert any(
        e["name"] == "work" for e in trace["traceEvents"] if e["ph"] == "X"
    )
