"""Miscellaneous nn edge cases."""

import numpy as np
import pytest

from repro import nn
from repro.nn.gradcheck import check_layer_gradients, max_relative_error


def test_sequential_replace(rng):
    net = nn.Sequential(nn.ReLU(), nn.Tanh())
    net.replace(1, nn.Sigmoid())
    assert isinstance(net[1], nn.Sigmoid)
    # Registration updated too: state_dict traversal sees the new layer.
    assert isinstance(net._modules["layer1"], nn.Sigmoid)


def test_sequential_replace_out_of_range(rng):
    net = nn.Sequential(nn.ReLU())
    with pytest.raises(IndexError):
        net.replace(3, nn.Tanh())


def test_sequential_replace_affects_forward(rng):
    net = nn.Sequential(nn.Identity())
    x = rng.normal(size=(2, 3))
    np.testing.assert_array_equal(net(x), x)
    net.replace(0, nn.ReLU())
    np.testing.assert_array_equal(net(x), np.maximum(x, 0))


def test_max_relative_error_zero_for_identical(rng):
    a = rng.normal(size=(4, 4))
    assert max_relative_error(a, a.copy()) == 0.0


def test_max_relative_error_detects_difference(rng):
    a = np.ones((3,))
    b = np.array([1.0, 1.0, 2.0])
    assert max_relative_error(a, b) == pytest.approx(0.5)


def test_check_layer_gradients_returns_input_key(rng):
    errors = check_layer_gradients(nn.Tanh(), rng.normal(size=(2, 3)))
    assert "input" in errors


def test_conv_kernel_larger_than_input_raises(rng):
    layer = nn.Conv2d(1, 1, 5, rng=rng)
    with pytest.raises(ValueError):
        layer(rng.normal(size=(1, 1, 3, 3)))


def test_deep_network_trains_without_nan(rng):
    """A deeper stack stays numerically sane for a few steps."""
    net = nn.Sequential(
        nn.Linear(8, 16, rng=rng), nn.ReLU(),
        nn.Linear(16, 16, rng=rng), nn.Tanh(),
        nn.Linear(16, 16, rng=rng), nn.ReLU(),
        nn.Linear(16, 4, rng=rng),
    )
    opt = nn.SGD(net.parameters(), lr=0.05, momentum=0.9)
    loss_fn = nn.CrossEntropyLoss()
    x = rng.normal(size=(16, 8))
    y = rng.integers(0, 4, size=16)
    for _ in range(20):
        opt.zero_grad()
        logits = net(x)
        loss, grad = loss_fn(logits, y)
        net.backward(grad)
        opt.step()
    assert np.isfinite(loss)
    assert all(np.all(np.isfinite(p.data)) for p in net.parameters())


def test_gradient_accumulation_across_batches(rng):
    """Two backward passes without zero_grad accumulate (sum) gradients."""
    layer = nn.Linear(3, 2, rng=rng)
    x = rng.normal(size=(4, 3))
    g = np.ones((4, 2))
    layer(x)
    layer.backward(g)
    once = layer.weight.grad.copy()
    layer(x)
    layer.backward(g)
    np.testing.assert_allclose(layer.weight.grad, 2 * once)


def test_batchnorm_batch_of_one_spatial(rng):
    """BN over a single sample still works (statistics over H, W)."""
    bn = nn.BatchNorm2d(2)
    out = bn(rng.normal(size=(1, 2, 4, 4)))
    assert out.shape == (1, 2, 4, 4)
    assert np.all(np.isfinite(out))


def test_residual_with_projection_gradcheck(rng):
    body = nn.Sequential(nn.Linear(4, 6, rng=rng), nn.Tanh())
    shortcut = nn.Linear(4, 6, bias=False, rng=rng)
    block = nn.Residual(body, shortcut)
    errors = check_layer_gradients(block, rng.normal(size=(3, 4)))
    for name, err in errors.items():
        assert err < 1e-5, name


def test_warmup_zero_epochs_delegates_immediately():
    opt = nn.SGD([nn.Parameter(np.zeros(1))], lr=0.1)
    after = nn.CosineAnnealingLR(opt, t_max=4)
    sched = nn.WarmupLR(opt, warmup_epochs=0, after=after)
    sched.step()
    assert opt.lr < 0.1  # already cosine-decaying
