"""Tests for the training loops (Algorithm 1)."""

import numpy as np
import pytest

from repro import nn
from repro.core import (
    OneShotFaultTolerantTrainer,
    ProgressiveFaultTolerantTrainer,
    Trainer,
    default_progressive_schedule,
)
from repro.datasets import ArrayDataset, DataLoader
from repro.models import MLP


def learnable_task(rng, n=120, num_classes=3):
    """A linearly separable task an MLP learns in a few epochs."""
    centers = rng.normal(size=(num_classes, 8)) * 3
    labels = rng.integers(0, num_classes, size=n)
    images = centers[labels] + rng.normal(size=(n, 8)) * 0.3
    dataset = ArrayDataset(images.reshape(n, 1, 2, 4), labels)
    return DataLoader(dataset, 30, shuffle=True, seed=0)


def make_trainer(rng, loader, cls=Trainer, **kwargs):
    model = MLP(8, [16], 3, rng=rng)
    opt = nn.SGD(model.parameters(), lr=0.1, momentum=0.9)
    return model, cls(model, opt, **kwargs)


def test_trainer_loss_decreases(rng):
    loader = learnable_task(rng)
    model, trainer = make_trainer(rng, loader)
    history = trainer.fit(loader, 8)
    assert history.num_epochs == 8
    assert history.epoch_losses[-1] < history.epoch_losses[0]
    assert history.epoch_train_accuracy[-1] > 80.0


def test_trainer_zero_epochs(rng):
    loader = learnable_task(rng)
    _, trainer = make_trainer(rng, loader)
    history = trainer.fit(loader, 0)
    assert history.num_epochs == 0
    assert history.final_val_accuracy is None


def test_trainer_negative_epochs_raises(rng):
    loader = learnable_task(rng)
    _, trainer = make_trainer(rng, loader)
    with pytest.raises(ValueError):
        trainer.fit(loader, -1)


def test_trainer_records_lr_schedule(rng):
    loader = learnable_task(rng)
    model = MLP(8, [8], 3, rng=rng)
    opt = nn.SGD(model.parameters(), lr=0.1)
    sched = nn.CosineAnnealingLR(opt, t_max=4)
    trainer = Trainer(model, opt, scheduler=sched)
    history = trainer.fit(loader, 4)
    assert history.epoch_lr[0] == pytest.approx(0.1)
    assert history.epoch_lr[-1] < 0.1


def test_trainer_val_loader_tracked(rng):
    loader = learnable_task(rng)
    model = MLP(8, [8], 3, rng=rng)
    opt = nn.SGD(model.parameters(), lr=0.1)
    trainer = Trainer(model, opt, val_loader=loader)
    history = trainer.fit(loader, 3)
    assert len(history.epoch_val_accuracy) == 3
    assert history.final_val_accuracy == history.epoch_val_accuracy[-1]


def test_trainer_epoch_end_hook(rng):
    loader = learnable_task(rng)
    seen = []
    model = MLP(8, [8], 3, rng=rng)
    opt = nn.SGD(model.parameters(), lr=0.1)
    trainer = Trainer(model, opt, on_epoch_end=lambda e, h: seen.append(e))
    trainer.fit(loader, 3)
    assert seen == [0, 1, 2]


def test_standard_trainer_p_sa_is_zero(rng):
    loader = learnable_task(rng)
    _, trainer = make_trainer(rng, loader)
    history = trainer.fit(loader, 2)
    assert history.epoch_p_sa == [0.0, 0.0]


def test_history_records_epoch_wall_time(rng):
    loader = learnable_task(rng)
    _, trainer = make_trainer(rng, loader)
    history = trainer.fit(loader, 3)
    assert len(history.epoch_seconds) == 3
    assert all(seconds > 0.0 for seconds in history.epoch_seconds)
    assert history.total_seconds == pytest.approx(sum(history.epoch_seconds))


def test_history_total_seconds_empty():
    from repro.core import TrainingHistory

    assert TrainingHistory().total_seconds == 0.0


def test_progressive_history_accumulates_epoch_seconds(rng):
    loader = learnable_task(rng)
    model = MLP(8, [16], 3, rng=rng)
    opt = nn.SGD(model.parameters(), lr=0.05)
    trainer = ProgressiveFaultTolerantTrainer(
        model, opt, p_sa_schedule=[0.01, 0.1], rng=rng
    )
    history = trainer.fit(loader, 2)
    # epoch_seconds covers every epoch of every level, like the other lists.
    assert len(history.epoch_seconds) == history.num_epochs == 4
    assert history.total_seconds > 0.0


# -- One-shot fault-tolerant training --------------------------------------------


def test_one_shot_trains_and_records_rate(rng):
    loader = learnable_task(rng)
    model = MLP(8, [16], 3, rng=rng)
    opt = nn.SGD(model.parameters(), lr=0.02, momentum=0.9)
    trainer = OneShotFaultTolerantTrainer(
        model, opt, p_sa_target=0.05, rng=rng
    )
    history = trainer.fit(loader, 10)
    assert history.epoch_p_sa == [0.05] * 10
    # Loss is noisy under injection; compare epoch medians front vs back.
    assert np.median(history.epoch_losses[-3:]) < np.median(
        history.epoch_losses[:3]
    )


def test_one_shot_restores_pristine_after_each_step(rng):
    """After fit, the weights must not contain pinned fault values."""
    loader = learnable_task(rng)
    model = MLP(8, [16], 3, rng=rng)
    opt = nn.SGD(model.parameters(), lr=0.01)
    trainer = OneShotFaultTolerantTrainer(model, opt, p_sa_target=0.3, rng=rng)
    trainer.fit(loader, 2)
    w = model.net.layer1.weight.data
    w_max = np.max(np.abs(w))
    # With faults *left* injected, ~27% of weights would equal +/- w_max.
    pinned_fraction = np.mean(np.isclose(np.abs(w), w_max))
    assert pinned_fraction < 0.05


def test_one_shot_invalid_rate(rng):
    model = MLP(8, [8], 3, rng=rng)
    opt = nn.SGD(model.parameters(), lr=0.1)
    with pytest.raises(ValueError):
        OneShotFaultTolerantTrainer(model, opt, p_sa_target=1.5, rng=rng)


def test_one_shot_improves_robustness(rng):
    """The headline claim at unit scale: FT training beats plain training
    under faults."""
    from repro.core import evaluate_defect_accuracy

    loader = learnable_task(rng, n=150)
    baseline = MLP(8, [16], 3, rng=np.random.default_rng(1))
    opt_b = nn.SGD(baseline.parameters(), lr=0.1, momentum=0.9)
    Trainer(baseline, opt_b).fit(loader, 10)

    ft = MLP(8, [16], 3, rng=np.random.default_rng(1))
    opt_f = nn.SGD(ft.parameters(), lr=0.1, momentum=0.9)
    OneShotFaultTolerantTrainer(
        ft, opt_f, p_sa_target=0.1, rng=np.random.default_rng(2)
    ).fit(loader, 10)

    eval_rng = np.random.default_rng(3)
    base_defect = evaluate_defect_accuracy(
        baseline, loader, 0.1, num_runs=10, rng=eval_rng
    )
    eval_rng = np.random.default_rng(3)
    ft_defect = evaluate_defect_accuracy(
        ft, loader, 0.1, num_runs=10, rng=eval_rng
    )
    assert ft_defect.mean_accuracy > base_defect.mean_accuracy


# -- Progressive fault-tolerant training --------------------------------------------


def test_default_progressive_schedule_ascending():
    schedule = default_progressive_schedule(0.1, num_levels=4)
    assert len(schedule) == 4
    assert schedule == sorted(schedule)
    assert schedule[-1] == pytest.approx(0.1)
    assert schedule[0] == pytest.approx(0.01)


def test_default_progressive_schedule_single_level():
    assert default_progressive_schedule(0.05, num_levels=1) == [0.05]


def test_default_progressive_schedule_validation():
    with pytest.raises(ValueError):
        default_progressive_schedule(0.0)
    with pytest.raises(ValueError):
        default_progressive_schedule(0.1, num_levels=0)


def test_progressive_visits_all_levels(rng):
    loader = learnable_task(rng)
    model = MLP(8, [16], 3, rng=rng)
    opt = nn.SGD(model.parameters(), lr=0.05)
    trainer = ProgressiveFaultTolerantTrainer(
        model, opt, p_sa_schedule=[0.01, 0.05, 0.1], rng=rng
    )
    history = trainer.fit(loader, 2)
    assert history.epoch_p_sa == [0.01, 0.01, 0.05, 0.05, 0.1, 0.1]
    assert history.num_epochs == 6


def test_progressive_requires_ascending_schedule(rng):
    model = MLP(8, [8], 3, rng=rng)
    opt = nn.SGD(model.parameters(), lr=0.1)
    with pytest.raises(ValueError):
        ProgressiveFaultTolerantTrainer(
            model, opt, p_sa_schedule=[0.1, 0.05], rng=rng
        )


def test_progressive_rejects_empty_or_invalid(rng):
    model = MLP(8, [8], 3, rng=rng)
    opt = nn.SGD(model.parameters(), lr=0.1)
    with pytest.raises(ValueError):
        ProgressiveFaultTolerantTrainer(model, opt, p_sa_schedule=[], rng=rng)
    with pytest.raises(ValueError):
        ProgressiveFaultTolerantTrainer(
            model, opt, p_sa_schedule=[0.5, 2.0], rng=rng
        )


def test_progressive_target_is_last_level(rng):
    model = MLP(8, [8], 3, rng=rng)
    opt = nn.SGD(model.parameters(), lr=0.1)
    trainer = ProgressiveFaultTolerantTrainer(
        model, opt, p_sa_schedule=[0.01, 0.2], rng=rng
    )
    assert trainer.p_sa_target == 0.2
