"""Tests for model deployment onto the crossbar simulator."""

import numpy as np
import pytest

from repro import nn
from repro.models import MLP, SimpleCNN
from repro.reram import ReRAMDeviceModel, crossbar_parameters, deploy_weights

FINE = ReRAMDeviceModel(g_off=1e-6, g_on=1e-4, levels=4096)


def test_crossbar_parameters_selects_conv_and_linear_weights(rng):
    model = SimpleCNN(in_channels=1, num_classes=3, image_size=8, rng=rng)
    names = [name for name, _ in crossbar_parameters(model)]
    assert all(name.endswith("weight") for name in names)
    # Two convs + one linear.
    assert len(names) == 3
    # BatchNorm gammas are excluded despite being named like weights? They
    # are named 'gamma', so only conv/linear weights appear.
    assert not any("gamma" in name or "bn" in name for name in names)


def test_crossbar_parameters_excludes_biases(rng):
    model = MLP(8, [4], 2, rng=rng)
    names = [name for name, _ in crossbar_parameters(model)]
    assert all("bias" not in name for name in names)


def test_deploy_and_readback_preserves_accuracy_behaviour(rng):
    model = MLP(8, [16], 3, rng=rng)
    x = rng.normal(size=(10, 1, 2, 4))
    model.eval()
    clean = model(x)
    deployed = deploy_weights(model, device=FINE, tile_size=16)
    deployed.load_effective_weights()
    quantised = model(x)
    # Fine quantisation: predictions should essentially match.
    np.testing.assert_allclose(quantised, clean, rtol=0.05, atol=0.05)
    deployed.restore_pristine()
    np.testing.assert_allclose(model(x), clean, atol=1e-12)


def test_deploy_counts_crossbars(rng):
    model = MLP(8, [4], 2, rng=rng)
    deployed = deploy_weights(model, device=FINE, tile_size=4)
    # fc1: (8 in x 4 out) -> 2x1 tiles x 2 = 4 xbars;
    # fc2: (4 x 2) -> 1 tile x 2 = 2 xbars.
    assert deployed.num_crossbars == 6


def test_inject_faults_changes_effective_weights(rng):
    model = MLP(8, [16], 3, rng=rng)
    pristine = {
        name: p.data.copy() for name, p in crossbar_parameters(model)
    }
    deployed = deploy_weights(model, device=FINE, tile_size=16)
    count = deployed.inject_faults(0.2, rng)
    assert count > 0
    deployed.load_effective_weights()
    changed = False
    for name, param in crossbar_parameters(model):
        if not np.allclose(param.data, pristine[name], atol=1e-3):
            changed = True
    assert changed
    deployed.restore_pristine()
    for name, param in crossbar_parameters(model):
        np.testing.assert_array_equal(param.data, pristine[name])


def test_clear_faults_then_reload(rng):
    model = MLP(4, [4], 2, rng=rng)
    deployed = deploy_weights(model, device=FINE, tile_size=8)
    deployed.inject_faults(0.5, rng)
    deployed.clear_faults()
    # Cells stay at pinned values until reprogrammed; restore puts the
    # pristine weights back in the *model* regardless.
    deployed.restore_pristine()
    for (name, param), (_, pristine) in zip(
        crossbar_parameters(model), deployed._pristine.items()
    ):
        np.testing.assert_array_equal(param.data, deployed._pristine[name])


def test_custom_ratio_passthrough(rng):
    model = MLP(4, [4], 2, rng=rng)
    deployed = deploy_weights(model, device=FINE, tile_size=8)
    count = deployed.inject_faults(0.3, rng, ratio=(1.0, 0.0))
    assert count > 0
