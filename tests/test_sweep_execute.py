"""End-to-end sweep execution: resume, interruption, worker determinism."""

import json
import os

import pytest

from repro import telemetry
from repro.sweep import (
    completed_cells,
    execute_plan,
    expand_plan,
    load_spec,
    run_sweep,
)

MICRO = {
    "name": "micro",
    "axes": {
        "arch": ["mlp"],
        "p_sa": [0.02, 0.1],
        "variant": ["baseline", "one_shot"],
    },
    "seeds": [0],
    "profiles": {
        "smoke": {
            "train_size": 48,
            "train_size_large": 48,
            "test_size": 32,
            "batch_size": 16,
            "defect_runs": 2,
            "num_classes_small": 4,
            "num_classes_large": 4,
        }
    },
}


def leaderboard_bytes(outcome):
    with open(outcome.leaderboard_path, "rb") as handle:
        return handle.read()


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """One uninterrupted serial smoke run of the micro grid."""
    sweep_dir = str(tmp_path_factory.mktemp("ref") / "sw")
    outcome = run_sweep(MICRO, sweep_dir=sweep_dir, profile="smoke", workers=0)
    return sweep_dir, outcome, leaderboard_bytes(outcome)


def test_full_run_completes_and_records_cells(reference):
    sweep_dir, outcome, _ = reference
    last = outcome.outcomes[-1]
    assert last.executed == 4 and last.skipped == 0 and last.complete
    assert outcome.leaderboard["cells"] == 4
    # every cell run carries its digest in the ledger and a result doc
    completed = completed_cells(os.path.join(sweep_dir, "runs"))
    assert set(completed) == {c.digest for c in last.plan.cells}


def test_rerun_is_a_noop_and_bit_identical(reference):
    sweep_dir, _, reference_bytes = reference
    again = run_sweep(MICRO, sweep_dir=sweep_dir, profile="smoke", workers=0)
    last = again.outcomes[-1]
    assert last.executed == 0 and last.skipped == 4
    assert leaderboard_bytes(again) == reference_bytes


def test_interrupt_and_resume_bit_identical(reference, tmp_path):
    _, _, reference_bytes = reference
    sweep_dir = str(tmp_path / "sw")
    first = run_sweep(
        MICRO, sweep_dir=sweep_dir, profile="smoke", workers=0, limit=2
    )
    assert first.leaderboard is None
    assert first.outcomes[-1].executed == 2
    assert first.outcomes[-1].remaining == 2
    assert "re-run to resume" in first.rendered
    resumed = run_sweep(MICRO, sweep_dir=sweep_dir, profile="smoke", workers=0)
    # resume runs only the n-k missing cells ...
    assert resumed.outcomes[-1].executed == 2
    assert resumed.outcomes[-1].skipped == 2
    # ... and the leaderboard is byte-identical to the uninterrupted run
    assert leaderboard_bytes(resumed) == reference_bytes


def test_parallel_workers_bit_identical(reference, tmp_path):
    _, _, reference_bytes = reference
    outcome = run_sweep(
        MICRO, sweep_dir=str(tmp_path / "sw"), profile="smoke", workers=2
    )
    assert leaderboard_bytes(outcome) == reference_bytes


def test_stale_partial_run_cleared_and_reexecuted(tmp_path):
    spec = load_spec(MICRO)
    plan = expand_plan(spec, "smoke")
    runs_dir = tmp_path / "sw" / "runs"
    stale = runs_dir / plan.cells[0].run_id
    stale.mkdir(parents=True)
    (stale / "events.jsonl").write_text('{"kind": "half-written"\n')
    outcome = execute_plan(plan, str(tmp_path / "sw"), workers=0)
    # the junk directory did not count as complete, and was replaced
    assert outcome.executed == len(plan.cells)
    assert (stale / "cell.json").is_file()


def test_execute_plan_refuses_active_telemetry_session(tmp_path):
    plan = expand_plan(load_spec(MICRO), "smoke")
    with telemetry.session(str(tmp_path / "runs")):
        with pytest.raises(RuntimeError, match="telemetry"):
            execute_plan(plan, str(tmp_path / "sw"), workers=0)


def test_cell_and_report_events_recorded(reference):
    sweep_dir, outcome, _ = reference
    runs_dir = os.path.join(sweep_dir, "runs")
    cell = outcome.outcomes[-1].plan.cells[0]
    with open(os.path.join(runs_dir, cell.run_id, "events.jsonl")) as handle:
        kinds = [json.loads(line).get("kind") for line in handle]
    assert "sweep_cell" in kinds
    report_dir = os.path.join(runs_dir, "sweep-report-smoke")
    with open(os.path.join(report_dir, "events.jsonl")) as handle:
        events = [json.loads(line) for line in handle]
    reports = [e for e in events if e.get("kind") == "sweep_report"]
    assert len(reports) == 1
    assert reports[0]["cells"] == 4
    assert reports[0]["entries"][0]["rank"] == 1


def test_leaderboard_ranks_by_stability_score(reference):
    _, outcome, _ = reference
    entries = outcome.leaderboard["entries"]
    scores = [e["stability_score"] for e in entries]
    assert scores == sorted(scores, reverse=True)
    assert [e["rank"] for e in entries] == list(range(1, len(entries) + 1))
