"""Tests for datasets, loaders and transforms."""

import numpy as np
import pytest

from repro.datasets import (
    ArrayDataset,
    Compose,
    DataLoader,
    GaussianNoise,
    Normalize,
    RandomCrop,
    RandomHorizontalFlip,
    Subset,
)


def make_dataset(n=20, rng=None):
    rng = rng or np.random.default_rng(0)
    return ArrayDataset(
        rng.normal(size=(n, 3, 4, 4)), rng.integers(0, 5, size=n), num_classes=5
    )


# -- ArrayDataset ------------------------------------------------------------


def test_array_dataset_len_and_getitem():
    ds = make_dataset(10)
    assert len(ds) == 10
    image, label = ds[3]
    assert image.shape == (3, 4, 4)
    assert isinstance(label, int)
    assert 0 <= label < 5


def test_array_dataset_num_classes_inferred():
    ds = ArrayDataset(np.zeros((4, 1)), np.array([0, 1, 2, 2]))
    assert ds.num_classes == 3


def test_array_dataset_length_mismatch_raises():
    with pytest.raises(ValueError):
        ArrayDataset(np.zeros((3, 1)), np.zeros(4, dtype=int))


def test_array_dataset_2d_labels_raise():
    with pytest.raises(ValueError):
        ArrayDataset(np.zeros((3, 1)), np.zeros((3, 1), dtype=int))


def test_array_dataset_transform_applied():
    ds = ArrayDataset(
        np.ones((2, 1, 2, 2)), np.zeros(2, dtype=int), transform=lambda x: x * 3
    )
    image, _ = ds[0]
    np.testing.assert_allclose(image, 3.0)


# -- Subset ----------------------------------------------------------------------


def test_subset_indexing():
    ds = make_dataset(10)
    sub = Subset(ds, [2, 5, 7])
    assert len(sub) == 3
    np.testing.assert_array_equal(sub[1][0], ds[5][0])
    assert sub.num_classes == 5


def test_subset_out_of_range_raises():
    with pytest.raises(IndexError):
        Subset(make_dataset(5), [10])


# -- DataLoader ---------------------------------------------------------------------


def test_loader_batches_cover_dataset():
    ds = make_dataset(23)
    loader = DataLoader(ds, batch_size=5, shuffle=False)
    total = sum(len(labels) for _, labels in loader)
    assert total == 23
    assert len(loader) == 5  # ceil(23/5)


def test_loader_drop_last():
    ds = make_dataset(23)
    loader = DataLoader(ds, batch_size=5, shuffle=False, drop_last=True)
    sizes = [len(labels) for _, labels in loader]
    assert sizes == [5, 5, 5, 5]
    assert len(loader) == 4


def test_loader_shuffle_changes_order_but_not_content():
    ds = make_dataset(16)
    ordered = DataLoader(ds, 16, shuffle=False)
    shuffled = DataLoader(ds, 16, shuffle=True, seed=0)
    (x1, y1), (x2, y2) = next(iter(ordered)), next(iter(shuffled))
    assert not np.array_equal(y1, y2) or not np.array_equal(x1, x2)
    assert sorted(y1.tolist()) == sorted(y2.tolist())


def test_loader_seeded_shuffle_reproducible():
    ds = make_dataset(16)
    l1 = DataLoader(ds, 4, shuffle=True, seed=42)
    l2 = DataLoader(ds, 4, shuffle=True, seed=42)
    for (_, y1), (_, y2) in zip(l1, l2):
        np.testing.assert_array_equal(y1, y2)


def test_loader_epochs_differ_with_shuffle():
    ds = make_dataset(32)
    loader = DataLoader(ds, 32, shuffle=True, seed=1)
    first = next(iter(loader))[1]
    second = next(iter(loader))[1]
    assert not np.array_equal(first, second)


def test_loader_batch_types():
    loader = DataLoader(make_dataset(8), 4, shuffle=False)
    images, labels = next(iter(loader))
    assert images.dtype == np.float64
    assert labels.dtype == np.int64


def test_loader_invalid_batch_size():
    with pytest.raises(ValueError):
        DataLoader(make_dataset(4), 0)


# -- Transforms ------------------------------------------------------------------------


def test_normalize():
    t = Normalize(mean=[1.0], std=[2.0])
    out = t(np.full((1, 2, 2), 3.0))
    np.testing.assert_allclose(out, 1.0)


def test_normalize_channel_mismatch():
    t = Normalize(mean=[0.0, 0.0], std=[1.0, 1.0])
    with pytest.raises(ValueError):
        t(np.zeros((3, 2, 2)))


def test_normalize_nonpositive_std():
    with pytest.raises(ValueError):
        Normalize(mean=[0.0], std=[0.0])


def test_random_crop_preserves_shape(rng):
    t = RandomCrop(8, padding=2, rng=rng)
    out = t(rng.normal(size=(3, 8, 8)))
    assert out.shape == (3, 8, 8)


def test_random_crop_zero_padding_identity(rng):
    x = rng.normal(size=(3, 8, 8))
    out = RandomCrop(8, padding=0, rng=rng)(x)
    np.testing.assert_array_equal(out, x)


def test_random_crop_wrong_size_raises(rng):
    with pytest.raises(ValueError):
        RandomCrop(8, rng=rng)(np.zeros((3, 6, 6)))


def test_random_flip_probability_one_flips(rng):
    x = np.arange(8, dtype=float).reshape(1, 2, 4)
    out = RandomHorizontalFlip(p=1.0, rng=rng)(x)
    np.testing.assert_array_equal(out, x[:, :, ::-1])


def test_random_flip_probability_zero_identity(rng):
    x = np.arange(8, dtype=float).reshape(1, 2, 4)
    out = RandomHorizontalFlip(p=0.0, rng=rng)(x)
    np.testing.assert_array_equal(out, x)


def test_gaussian_noise_zero_sigma_identity(rng):
    x = np.ones((1, 2, 2))
    assert GaussianNoise(0.0, rng=rng)(x) is x


def test_gaussian_noise_changes_values(rng):
    x = np.zeros((1, 4, 4))
    out = GaussianNoise(1.0, rng=rng)(x)
    assert np.any(out != 0)


def test_compose_applies_in_order():
    t = Compose([lambda x: x + 1, lambda x: x * 2])
    np.testing.assert_allclose(t(np.zeros(2)), 2.0)
