"""Tests for the real-CIFAR loaders (exercised with fabricated batches)."""

import os
import pickle

import numpy as np
import pytest

from repro.datasets import (
    cifar10_available,
    cifar100_available,
    load_cifar10,
    load_cifar100,
)


def write_pickle(path, payload):
    with open(path, "wb") as handle:
        pickle.dump(payload, handle)


@pytest.fixture
def fake_cifar10(tmp_path):
    base = tmp_path / "cifar-10-batches-py"
    base.mkdir()
    rng = np.random.default_rng(0)
    for i in range(1, 6):
        write_pickle(
            base / f"data_batch_{i}",
            {
                b"data": rng.integers(0, 256, size=(4, 3072), dtype=np.uint8),
                b"labels": rng.integers(0, 10, size=4).tolist(),
            },
        )
    write_pickle(
        base / "test_batch",
        {
            b"data": rng.integers(0, 256, size=(6, 3072), dtype=np.uint8),
            b"labels": rng.integers(0, 10, size=6).tolist(),
        },
    )
    return str(tmp_path)


@pytest.fixture
def fake_cifar100(tmp_path):
    base = tmp_path / "cifar-100-python"
    base.mkdir()
    rng = np.random.default_rng(0)
    for name, n in (("train", 8), ("test", 4)):
        write_pickle(
            base / name,
            {
                b"data": rng.integers(0, 256, size=(n, 3072), dtype=np.uint8),
                b"fine_labels": rng.integers(0, 100, size=n).tolist(),
            },
        )
    return str(tmp_path)


def test_availability_checks(tmp_path):
    assert not cifar10_available(str(tmp_path))
    assert not cifar100_available(str(tmp_path))


def test_missing_data_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_cifar10(str(tmp_path))
    with pytest.raises(FileNotFoundError):
        load_cifar100(str(tmp_path))


def test_load_cifar10(fake_cifar10):
    assert cifar10_available(fake_cifar10)
    train, test = load_cifar10(fake_cifar10)
    assert len(train) == 20  # 5 batches x 4
    assert len(test) == 6
    assert train.num_classes == 10
    image, label = train[0]
    assert image.shape == (3, 32, 32)
    assert 0.0 <= image.min() and image.max() <= 1.0


def test_load_cifar100(fake_cifar100):
    assert cifar100_available(fake_cifar100)
    train, test = load_cifar100(fake_cifar100)
    assert len(train) == 8
    assert len(test) == 4
    assert train.num_classes == 100
    image, _ = train[0]
    assert image.shape == (3, 32, 32)
