"""Tests for AccuracyReport bookkeeping."""

import pytest

from repro.core import AccuracyReport


def make_report():
    report = AccuracyReport(
        method="one_shot 0.05", acc_pretrain=75.1, acc_retrain=75.4
    )
    report.add_defect(0.01, 73.0)
    report.add_defect(0.02, 70.0)
    return report


def test_acc_defect_lookup():
    report = make_report()
    assert report.acc_defect(0.01) == 73.0


def test_acc_defect_missing_raises():
    with pytest.raises(KeyError):
        make_report().acc_defect(0.5)


def test_stability_uses_equation_one():
    report = make_report()
    assert report.stability(0.01) == pytest.approx(75.4 / (75.1 - 73.0))


def test_accuracy_drop():
    report = make_report()
    assert report.accuracy_drop(0.02) == pytest.approx(5.1)


def test_dict_roundtrip():
    report = make_report()
    clone = AccuracyReport.from_dict(report.to_dict())
    assert clone.method == report.method
    assert clone.acc_pretrain == report.acc_pretrain
    assert clone.defect == report.defect
    assert isinstance(list(clone.defect.keys())[0], float)


def test_metadata_round_trips_through_dict():
    report = make_report()
    report.metadata["scale"] = "ci"
    report.metadata["method"] = "one_shot"
    clone = AccuracyReport.from_dict(report.to_dict())
    assert clone.metadata == {"scale": "ci", "method": "one_shot"}


def test_from_dict_without_metadata_is_backward_compatible():
    payload = make_report().to_dict()
    payload.pop("metadata", None)
    clone = AccuracyReport.from_dict(payload)
    assert clone.metadata == {}
