"""Tests for repro.telemetry.report: golden determinism, content, CLI."""

import json
import os

import pytest

from repro import telemetry
from repro.telemetry.cli import main as cli_main
from repro.telemetry.report import (
    REPORT_FILENAME,
    build_report,
    find_bench_files,
    render_report,
    write_report,
)


@pytest.fixture(autouse=True)
def _no_leaked_run():
    yield
    telemetry.end_run()


def _make_run(directory, seed, methods):
    """One synthetic finished run with method_report + monitor events."""
    with telemetry.session(
        str(directory), config={"experiment": "table1", "seed": seed}
    ) as run:
        for m, (name, retrain) in enumerate(methods):
            run.emit(
                "method_report",
                method=name,
                acc_pretrain=80.0,
                acc_retrain=retrain,
                defect={"0.0": retrain, "0.01": retrain - 3.0,
                        "0.02": retrain - 6.0 - m},
                metadata={},
            )
            for rate, acc in ((0.01, retrain - 3.0), (0.02, retrain - 6.0 - m)):
                run.emit(
                    "defect_eval", p_sa=rate, runs=4, mean_accuracy=acc
                )
        run.emit(
            "model_cost", model="MLP", params=100, macs=200, flops=420,
            activation_bytes=800, crossbar_cells=180,
        )
        for i in range(3):
            run.emit(
                "resource_sample", rss_bytes=1_000_000 + i, cpu_seconds=0.1 * i,
                num_fds=8,
            )
        run.emit("heartbeat", label="t", completed=4, total=4,
                 elapsed_seconds=1.0, rate_per_second=4.0, eta_seconds=0.0)
        with run.span("evaluate"):
            pass
        return run.directory


@pytest.fixture()
def ledger(tmp_path):
    parent = tmp_path / "runs"
    a = _make_run(parent, 1, [("one_shot", 78.0), ("progressive", 79.0)])
    b = _make_run(parent, 2, [("baseline", 74.0)])
    return str(parent), a, b


# -- document ----------------------------------------------------------------


def test_build_report_aggregates_runs_and_ranks_stability(ledger):
    parent, _, _ = ledger
    report = build_report(parent)
    assert report["num_runs"] == 2
    assert len(report["runs"]) == 2
    # One curve per (run, method).
    assert len(report["curves"]) == 3
    for curve in report["curves"]:
        assert [r for r, _ in curve["points"]] == [0.0, 0.01, 0.02]
    # Ranked best-first; progressive (smallest degradation) wins.
    scores = [e["stability_score"] for e in report["stability"]]
    assert scores == sorted(scores, reverse=True)
    assert report["stability"][0]["method"] == "progressive"
    assert all(e["p_sa"] == 0.02 for e in report["stability"])


def test_report_includes_resources_costs_and_spans(ledger):
    parent, _, _ = ledger
    report = build_report(parent)
    run = report["runs"][0]
    assert run["resources"]["samples"] == 3
    assert run["resources"]["heartbeats"] == 1
    assert run["model_cost"][0]["crossbar_cells"] == 180
    assert any(s["path"] == "evaluate" for s in run["spans"])


def test_build_report_on_single_run_dir(ledger):
    _, a, _ = ledger
    assert build_report(a)["num_runs"] == 1


def test_build_report_empty_directory_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        build_report(str(tmp_path))
    with pytest.raises(FileNotFoundError):
        build_report(str(tmp_path / "missing"))


# -- rendering ---------------------------------------------------------------


def test_render_is_deterministic_and_self_contained(ledger):
    parent, _, _ = ledger
    first = render_report(build_report(parent))
    second = render_report(build_report(parent))
    assert first == second  # byte-identical golden property
    # Self-contained: one HTML document, no external fetches.
    assert first.startswith("<!DOCTYPE html>")
    for marker in ("http://", "https://", "<script src", "<link "):
        assert marker not in first
    # The three headline sections all rendered.
    assert "Accuracy vs P<sub>sa</sub>" in first
    assert "Stability-Score ranking" in first
    assert "<svg" in first
    assert "progressive" in first and "one_shot" in first


def test_write_report_creates_html(ledger):
    parent, _, _ = ledger
    path = write_report(parent)
    assert path == os.path.join(parent, REPORT_FILENAME)
    with open(path) as fh:
        assert "<svg" in fh.read()


def test_bench_sparklines_render(ledger, tmp_path):
    parent, _, _ = ledger
    bench_dir = tmp_path / "bench"
    bench_dir.mkdir()
    for n, mean in enumerate((0.010, 0.012)):
        doc = {
            "suite": "fast",
            "cases": {
                "conv2d/forward": {"stats": {"mean": mean}},
            },
        }
        (bench_dir / f"BENCH_{n}.json").write_text(json.dumps(doc))
    assert find_bench_files(str(bench_dir)) == [
        str(bench_dir / "BENCH_0.json"),
        str(bench_dir / "BENCH_1.json"),
    ]
    report = build_report(parent, bench_dir=str(bench_dir))
    assert report["bench"]
    html = render_report(report)
    assert "conv2d/forward" in html


# -- forensics section -------------------------------------------------------


def _layer_entry(layer, dev, clean):
    return {
        "layer": layer, "sum_sq_dev": dev, "sum_sq_clean": clean,
        "sum_dot": clean, "sum_sq_fault": clean + dev, "perturbed": 10,
        "elements": 100, "first_divergence": 1,
    }


@pytest.fixture()
def forensics_run(tmp_path):
    parent = tmp_path / "fruns"
    with telemetry.session(
        str(parent), config={"experiment": "table1", "seed": 3}
    ) as run:
        for p_sa in (0.01, 0.05):
            for draw in range(2):
                run.emit(
                    "forensics_draw", p_sa=p_sa, draw=draw, seed=draw,
                    num_samples=40, num_flipped=4, undiverged_flips=1,
                    accuracy=70.0,
                    layers=[
                        _layer_entry("net.layer1", 1.0 * (1 + draw), 50.0),
                        _layer_entry("net.layer3", 4.0 * (1 + draw), 50.0),
                    ],
                )
        run_dir = run.directory
    return str(parent), run_dir


def test_report_renders_forensics_heatmap(forensics_run):
    parent, _ = forensics_run
    report = build_report(parent)
    assert report["runs"][0]["forensics"]
    html = render_report(report)
    assert "Fault forensics" in html
    assert "net.layer1" in html and "net.layer3" in html
    assert "class='cell'" in html  # heatmap rects rendered
    assert "(below threshold)" in html
    assert render_report(build_report(parent)) == html  # still deterministic


def test_report_without_forensics_has_empty_state(ledger):
    parent, _, _ = ledger
    html = render_report(build_report(parent))
    assert "Fault forensics" in html
    assert "class='cell'" not in html


def test_cli_forensics_renders_heatmap(forensics_run, capsys):
    _, run_dir = forensics_run
    assert cli_main(["forensics", run_dir]) == 0
    out = capsys.readouterr().out
    assert "Per-layer deviation heatmap" in out
    assert "First-divergence attribution" in out
    assert "p_sa=0.05" in out


def test_cli_forensics_json_mode(forensics_run, capsys):
    _, run_dir = forensics_run
    assert cli_main(["forensics", run_dir, "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert len(doc) == 2  # one aggregate per rate
    assert {a["p_sa"] for a in doc} == {0.01, 0.05}
    assert all(a["num_draws"] == 2 for a in doc)


def test_cli_forensics_without_events_reports_empty(ledger, capsys):
    _, a, _ = ledger
    assert cli_main(["forensics", a]) == 0
    assert "no forensics events recorded" in capsys.readouterr().out


def test_cli_forensics_missing_run_exits_2(tmp_path, capsys):
    assert cli_main(["forensics", str(tmp_path / "missing")]) == 2
    assert "error:" in capsys.readouterr().err


# -- CLI ---------------------------------------------------------------------


def test_cli_report_writes_and_prints_path(ledger, capsys, tmp_path):
    parent, _, _ = ledger
    out = str(tmp_path / "out" / "dash.html")
    assert cli_main(
        ["report", parent, "-o", out, "--bench-dir", str(tmp_path)]
    ) == 0
    assert capsys.readouterr().out.strip() == out
    assert os.path.isfile(out)


def test_cli_report_json_mode(ledger, capsys, tmp_path):
    parent, _, _ = ledger
    assert cli_main(
        ["report", parent, "--json", "--bench-dir", str(tmp_path)]
    ) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["num_runs"] == 2


def test_cli_report_empty_directory_exits_2(tmp_path, capsys):
    assert cli_main(["report", str(tmp_path)]) == 2
    assert "error:" in capsys.readouterr().err


# -- degenerate run dirs exit 2 everywhere (bugfix) --------------------------


def test_cli_show_and_trace_reject_empty_events(tmp_path, capsys):
    run_dir = tmp_path / "run-empty"
    run_dir.mkdir()
    (run_dir / "events.jsonl").write_text("")
    assert cli_main(["show", str(run_dir)]) == 2
    assert "no readable events" in capsys.readouterr().err
    assert cli_main(["trace", str(run_dir)]) == 2
    assert "no readable events" in capsys.readouterr().err


def test_cli_show_rejects_fully_corrupt_events(tmp_path, capsys):
    run_dir = tmp_path / "run-corrupt"
    run_dir.mkdir()
    (run_dir / "events.jsonl").write_text("not json\n{broken\n")
    assert cli_main(["show", str(run_dir)]) == 2
    err = capsys.readouterr().err
    assert "no readable events" in err


def test_cli_file_path_exits_2(tmp_path, capsys):
    target = tmp_path / "file.txt"
    target.write_text("x")
    assert cli_main(["show", str(target)]) == 2


def test_report_renders_sweep_leaderboards(tmp_path):
    with telemetry.session(
        str(tmp_path), run_id="sweep-report-smoke",
        config={"sweep": "s", "sweep_profile": "smoke"},
    ) as run:
        run.emit(
            "sweep_report", sweep="s", profile="smoke", cells=2,
            entries=[
                {"rank": 1, "arch": "mlp", "variant": "one_shot",
                 "p_sa": 0.1, "p_sa_train": 0.05, "sparsity": 0.0,
                 "quant_bits": 0, "seeds": [0], "acc_pretrain": 80.0,
                 "acc_retrain": 78.0, "acc_defect": 70.0,
                 "stability_score": 7.8},
                {"rank": 2, "arch": "mlp", "variant": "baseline",
                 "p_sa": 0.1, "p_sa_train": None, "sparsity": 0.0,
                 "quant_bits": 0, "seeds": [0], "acc_pretrain": 80.0,
                 "acc_retrain": 80.0, "acc_defect": 40.0,
                 "stability_score": 2.0},
            ],
        )
    report = build_report(str(tmp_path))
    assert len(report["sweeps"]) == 1
    html_text = render_report(report)
    assert "Sweep leaderboards" in html_text
    assert "one_shot" in html_text and "7.8000" in html_text


def test_report_without_sweeps_shows_hint(tmp_path):
    with telemetry.session(str(tmp_path)) as run:
        run.emit("heartbeat", label="t", completed=1, total=1,
                 elapsed_seconds=1.0, rate_per_second=1.0, eta_seconds=0.0)
    html_text = render_report(build_report(str(tmp_path)))
    assert "No sweep leaderboards recorded" in html_text
