"""Tests for GroupNorm and gradient clipping."""

import numpy as np
import pytest

from repro import nn
from repro.nn.gradcheck import check_layer_gradients


def test_groupnorm_normalises_per_group(rng):
    gn = nn.GroupNorm(2, 4)
    x = rng.normal(loc=3.0, scale=2.0, size=(5, 4, 6, 6))
    out = gn(x)
    # With unit gamma / zero beta, each (sample, group) is standardised.
    grouped = out.reshape(5, 2, 2 * 36)
    np.testing.assert_allclose(grouped.mean(axis=2), 0.0, atol=1e-10)
    np.testing.assert_allclose(grouped.std(axis=2), 1.0, atol=1e-4)


def test_groupnorm_gradcheck(rng):
    gn = nn.GroupNorm(2, 4)
    errors = check_layer_gradients(gn, rng.normal(size=(3, 4, 3, 3)))
    for name, err in errors.items():
        assert err < 1e-5, f"{name}: {err}"


def test_groupnorm_single_group_is_layernorm_style(rng):
    gn = nn.GroupNorm(1, 3)
    x = rng.normal(size=(2, 3, 4, 4))
    out = gn(x)
    flat = out.reshape(2, -1)
    np.testing.assert_allclose(flat.mean(axis=1), 0.0, atol=1e-10)


def test_groupnorm_batch_independent(rng):
    """A sample's output is identical alone or inside a batch (unlike BN)."""
    gn = nn.GroupNorm(2, 4)
    batch = rng.normal(size=(6, 4, 5, 5))
    full = gn(batch)
    solo = gn(batch[2:3])
    np.testing.assert_allclose(full[2], solo[0], atol=1e-12)


def test_groupnorm_train_eval_identical(rng):
    gn = nn.GroupNorm(2, 4)
    x = rng.normal(size=(3, 4, 4, 4))
    train_out = gn(x)
    gn.eval()
    eval_out = gn(x)
    np.testing.assert_allclose(train_out, eval_out)


def test_groupnorm_validation(rng):
    with pytest.raises(ValueError):
        nn.GroupNorm(3, 4)  # not divisible
    with pytest.raises(ValueError):
        nn.GroupNorm(0, 4)
    gn = nn.GroupNorm(2, 4)
    with pytest.raises(ValueError):
        gn(rng.normal(size=(2, 5, 3, 3)))


def test_clip_grad_norm_no_clip_below_threshold():
    p = nn.Parameter(np.zeros(3))
    p.grad[...] = [3.0, 0.0, 4.0]  # norm 5
    norm = nn.clip_grad_norm([p], max_norm=10.0)
    assert norm == pytest.approx(5.0)
    np.testing.assert_allclose(p.grad, [3.0, 0.0, 4.0])


def test_clip_grad_norm_scales_to_max():
    p = nn.Parameter(np.zeros(3))
    p.grad[...] = [3.0, 0.0, 4.0]
    nn.clip_grad_norm([p], max_norm=1.0)
    assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-6)
    np.testing.assert_allclose(p.grad, [0.6, 0.0, 0.8], rtol=1e-6)


def test_clip_grad_norm_global_across_parameters():
    a, b = nn.Parameter(np.zeros(1)), nn.Parameter(np.zeros(1))
    a.grad[...] = [3.0]
    b.grad[...] = [4.0]
    nn.clip_grad_norm([a, b], max_norm=1.0)
    total = np.sqrt(a.grad[0] ** 2 + b.grad[0] ** 2)
    assert total == pytest.approx(1.0, rel=1e-6)


def test_clip_grad_norm_validation():
    with pytest.raises(ValueError):
        nn.clip_grad_norm([nn.Parameter(np.zeros(1))], max_norm=0.0)


def test_trainer_grad_clip_integration(rng):
    from repro.core import Trainer
    from repro.datasets import ArrayDataset, DataLoader
    from repro.models import MLP

    images = rng.normal(size=(40, 1, 2, 4)) * 100  # huge inputs: big grads
    labels = rng.integers(0, 3, size=40)
    loader = DataLoader(ArrayDataset(images, labels), 20, seed=0)
    model = MLP(8, [8], 3, rng=rng)
    opt = nn.SGD(model.parameters(), lr=0.5)
    Trainer(model, opt, grad_clip=1.0).fit(loader, 3)
    assert all(np.all(np.isfinite(p.data)) for p in model.parameters())


def test_trainer_grad_clip_validation(rng):
    from repro.core import Trainer
    from repro.models import MLP

    model = MLP(8, [8], 3, rng=rng)
    opt = nn.SGD(model.parameters(), lr=0.1)
    with pytest.raises(ValueError):
        Trainer(model, opt, grad_clip=-1.0)


def test_ft_trainer_grad_clip_stabilises_high_rate(rng):
    """The one-shot trainer at a large rate stays finite with clipping."""
    from repro.core import OneShotFaultTolerantTrainer
    from repro.datasets import ArrayDataset, DataLoader
    from repro.models import MLP

    centers = rng.normal(size=(3, 8)) * 3
    labels = rng.integers(0, 3, size=90)
    images = centers[labels] + rng.normal(size=(90, 8)) * 0.3
    loader = DataLoader(ArrayDataset(images.reshape(90, 1, 2, 4), labels),
                        30, shuffle=True, seed=0)
    model = MLP(8, [16], 3, rng=rng)
    opt = nn.SGD(model.parameters(), lr=0.1, momentum=0.9)
    trainer = OneShotFaultTolerantTrainer(
        model, opt, p_sa_target=0.2, rng=rng, grad_clip=5.0
    )
    history = trainer.fit(loader, 5)
    assert all(np.isfinite(l) for l in history.epoch_losses)
