"""Tests for the synthetic CIFAR-analogue generator."""

import numpy as np
import pytest

from repro.datasets import (
    SyntheticConfig,
    SyntheticImageClassification,
    make_synthetic_pair,
)


def small_config(**kwargs):
    defaults = dict(
        num_classes=4,
        image_size=8,
        train_size=64,
        test_size=32,
        seed=3,
        bandwidth=3,
    )
    defaults.update(kwargs)
    return SyntheticConfig(**defaults)


def test_splits_have_requested_sizes():
    train, test = SyntheticImageClassification(small_config()).splits()
    assert len(train) == 64
    assert len(test) == 32
    assert train.num_classes == 4


def test_image_shapes():
    train, _ = SyntheticImageClassification(small_config()).splits()
    image, label = train[0]
    assert image.shape == (3, 8, 8)
    assert 0 <= label < 4


def test_deterministic_under_seed():
    a_train, _ = SyntheticImageClassification(small_config()).splits()
    b_train, _ = SyntheticImageClassification(small_config()).splits()
    np.testing.assert_array_equal(a_train.images, b_train.images)
    np.testing.assert_array_equal(a_train.labels, b_train.labels)


def test_different_seeds_differ():
    a_train, _ = SyntheticImageClassification(small_config(seed=1)).splits()
    b_train, _ = SyntheticImageClassification(small_config(seed=2)).splits()
    assert not np.array_equal(a_train.images, b_train.images)


def test_prototypes_are_standardised():
    gen = SyntheticImageClassification(small_config())
    for cls in range(4):
        for ch in range(3):
            proto = gen.prototypes[cls, ch]
            assert abs(proto.mean()) < 1e-10
            assert abs(proto.std() - 1.0) < 1e-10


def test_prototypes_are_distinct_across_classes():
    gen = SyntheticImageClassification(small_config())
    flat = gen.prototypes.reshape(4, -1)
    for i in range(4):
        for j in range(i + 1, 4):
            corr = np.corrcoef(flat[i], flat[j])[0, 1]
            assert abs(corr) < 0.9


def test_all_classes_appear():
    train, _ = SyntheticImageClassification(
        small_config(train_size=400)
    ).splits()
    assert set(np.unique(train.labels)) == {0, 1, 2, 3}


def test_noise_free_samples_near_prototypes():
    config = small_config(
        noise_sigma=0.0,
        max_shift=0,
        contrast_jitter=0.0,
        brightness_jitter=0.0,
    )
    gen = SyntheticImageClassification(config)
    train, _ = gen.splits()
    image, label = train[0]
    np.testing.assert_allclose(image, gen.prototypes[label])


def test_task_is_learnable_by_nearest_prototype():
    """Without nuisances beyond mild noise, nearest-prototype should win."""
    config = small_config(
        train_size=200, noise_sigma=0.3, max_shift=0,
        contrast_jitter=0.0, brightness_jitter=0.0,
    )
    gen = SyntheticImageClassification(config)
    train, _ = gen.splits()
    protos = gen.prototypes.reshape(4, -1)
    correct = 0
    for i in range(len(train)):
        image, label = train[i]
        dists = np.linalg.norm(protos - image.reshape(-1), axis=1)
        correct += int(dists.argmin() == label)
    assert correct / len(train) > 0.95


def test_make_synthetic_pair_convenience():
    train, test = make_synthetic_pair(
        num_classes=3, image_size=8, train_size=30, test_size=10, seed=0
    )
    assert len(train) == 30
    assert len(test) == 10
    assert train.num_classes == 3


@pytest.mark.parametrize(
    "kwargs",
    [
        {"num_classes": 1},
        {"image_size": 2},
        {"channels": 0},
        {"noise_sigma": -1.0},
        {"max_shift": 8},
        {"bandwidth": 0},
        {"bandwidth": 5},
    ],
)
def test_config_validation(kwargs):
    with pytest.raises(ValueError):
        small_config(**kwargs)
