"""Cross-module dataflow rules (RL011–RL015) and the event registry.

Fixture projects are in-memory multi-file snippets run through the real
engine, plus acceptance checks against the actual ``src/repro`` tree:
the committed registry must cover every ``emit()`` site, and the tree
must be clean under all five flow rules.
"""

import ast
import os
import textwrap

import repro.lint.rules  # noqa: F401  (registers the built-in rules)
from repro.lint import lint_paths, lint_sources
from repro.lint.engine import load_project
from repro.lint.flow.contracts import extract_event_schemas
from repro.lint.flow.purity import submission_sites
from repro.lint.sources import Project, SourceFile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src")

FLOW_RULES = ["RL011", "RL012", "RL013", "RL014", "RL015"]

#: A producer module shared by the contract fixtures: one closed kind.
PRODUCER = """
def produce(log):
    log.emit("epoch_done", epoch=1, accuracy=0.5)
"""


def source(text, path="pkg/mod.py", module="pkg.mod"):
    return SourceFile.from_text(
        textwrap.dedent(text), path=path, module=module
    )


def lint_project(*sources, select=None):
    return lint_sources(Project(list(sources)), select=select)


def rules_fired(findings):
    return {f.rule for f in findings}


# -- RL011 unknown-event-kind ----------------------------------------------


def test_rl011_flags_unknown_kind():
    producer = source(PRODUCER, path="pkg/prod.py", module="pkg.prod")
    consumer = source(
        """
        def consume(events):
            for event in events:
                if event["kind"] == "train_done":
                    yield event
        """,
        path="pkg/cons.py",
        module="pkg.cons",
    )
    findings = lint_project(producer, consumer, select=["RL011"])
    assert rules_fired(findings) == {"RL011"}
    assert "train_done" in findings[0].message
    assert findings[0].path == "pkg/cons.py"


def test_rl011_accepts_known_kind():
    producer = source(PRODUCER, path="pkg/prod.py", module="pkg.prod")
    consumer = source(
        """
        def consume(events):
            return [e for e in events if e["kind"] == "epoch_done"]
        """,
        path="pkg/cons.py",
        module="pkg.cons",
    )
    assert not lint_project(producer, consumer, select=["RL011"])


def test_rl011_silent_without_any_emit_site():
    # A fixture project with no producer at all must not flag every
    # consumer: no extraction means no contract to check.
    consumer = source(
        """
        def consume(events):
            return [e for e in events if e["kind"] == "anything"]
        """
    )
    assert not lint_project(consumer, select=["RL011"])


def test_rl011_flags_stale_committed_registry():
    producer = source(PRODUCER, path="pkg/prod.py", module="pkg.prod")
    registry = source(
        """
        # --- BEGIN GENERATED EVENT SCHEMAS (python -m repro.lint schema) ---
        EVENT_SCHEMAS = {
            "other_kind": {"fields": (), "extra": False},
        }
        # --- END GENERATED EVENT SCHEMAS ---
        """,
        path="pkg/telemetry/schema.py",
        module="pkg.telemetry.schema",
    )
    findings = lint_project(producer, registry, select=["RL011"])
    assert findings, "stale registry must be reported"
    assert all(f.path == "pkg/telemetry/schema.py" for f in findings)
    assert any("repro.lint schema" in f.message for f in findings)


# -- RL012 unknown-event-field ---------------------------------------------


def test_rl012_flags_misspelled_field_under_narrowing():
    producer = source(PRODUCER, path="pkg/prod.py", module="pkg.prod")
    consumer = source(
        """
        def consume(events):
            for event in events:
                if event["kind"] == "epoch_done":
                    yield event["acuracy"]
        """,
        path="pkg/cons.py",
        module="pkg.cons",
    )
    findings = lint_project(producer, consumer, select=["RL012"])
    assert rules_fired(findings) == {"RL012"}
    assert "acuracy" in findings[0].message


def test_rl012_accepts_schema_and_bookkeeping_fields():
    producer = source(PRODUCER, path="pkg/prod.py", module="pkg.prod")
    consumer = source(
        """
        def consume(events):
            for event in events:
                if event["kind"] == "epoch_done":
                    yield event["accuracy"], event.get("ts"), event["seq"]
        """,
        path="pkg/cons.py",
        module="pkg.cons",
    )
    assert not lint_project(producer, consumer, select=["RL012"])


def test_rl012_open_kind_skips_field_checks():
    producer = source(
        """
        def produce(log, extras):
            log.emit("epoch_done", epoch=1, **extras)
        """,
        path="pkg/prod.py",
        module="pkg.prod",
    )
    consumer = source(
        """
        def consume(events):
            for event in events:
                if event["kind"] == "epoch_done":
                    yield event["whatever"]
        """,
        path="pkg/cons.py",
        module="pkg.cons",
    )
    # The unresolvable **extras makes the kind open: never guess.
    assert not lint_project(producer, consumer, select=["RL012"])


def test_rl012_follows_events_through_collections():
    # The summarize_run pattern: events filed into a dict of lists
    # under kind narrowing, then read back in a later loop.
    producer = source(PRODUCER, path="pkg/prod.py", module="pkg.prod")
    consumer = source(
        """
        def summarize(events):
            draws = {}
            for event in events:
                kind = event["kind"]
                if kind == "epoch_done":
                    draws.setdefault(event["epoch"], []).append(event)
            out = []
            for key in sorted(draws):
                out.append([d["acuracy"] for d in draws[key]])
            return out
        """,
        path="pkg/cons.py",
        module="pkg.cons",
    )
    findings = lint_project(producer, consumer, select=["RL012"])
    assert rules_fired(findings) == {"RL012"}
    assert "acuracy" in findings[0].message
    assert "epoch_done" in findings[0].message


def test_rl012_collection_tracking_accepts_valid_fields():
    producer = source(PRODUCER, path="pkg/prod.py", module="pkg.prod")
    consumer = source(
        """
        def summarize(events):
            bucket = []
            for event in events:
                if event["kind"] == "epoch_done":
                    bucket.append(event)
            for d in bucket:
                yield d["accuracy"], d.get("ts")
        """,
        path="pkg/cons.py",
        module="pkg.cons",
    )
    assert not lint_project(producer, consumer, select=["RL012"])


def test_rl012_unnarrowed_collection_store_makes_no_claim():
    producer = source(PRODUCER, path="pkg/prod.py", module="pkg.prod")
    consumer = source(
        """
        def summarize(events, extras):
            bucket = []
            for event in events:
                event["kind"]
                bucket.append(event)  # no narrowing at the store site
            return [d["anything"] for d in bucket]
        """,
        path="pkg/cons.py",
        module="pkg.cons",
    )
    # One closed kind and no open kinds: the all-kinds fallback still
    # applies, so 'anything' is flagged — but against no specific kind.
    findings = lint_project(producer, consumer, select=["RL012"])
    assert all("epoch_done" not in f.message for f in findings)


def test_rl012_unnarrowed_access_checked_against_all_kinds():
    producer = source(PRODUCER, path="pkg/prod.py", module="pkg.prod")
    consumer = source(
        """
        def consume(events):
            return [e["nowhere"] for e in events if e["kind"] == "epoch_done"]
        """,
        path="pkg/cons.py",
        module="pkg.cons",
    )
    findings = lint_project(producer, consumer, select=["RL012"])
    assert rules_fired(findings) == {"RL012"}


# -- RL013 rng-taint --------------------------------------------------------


def test_rl013_flags_public_api_hiding_entropy():
    mod = source(
        """
        import numpy as np

        def _noise():
            return np.random.default_rng().normal()

        def sample_devices(count):
            return [_noise() for _ in range(count)]
        """
    )
    findings = lint_project(mod, select=["RL013"])
    assert rules_fired(findings) == {"RL013"}
    assert any("sample_devices" in f.message for f in findings)


def test_rl013_flags_rng_param_reaching_hidden_entropy():
    mod = source(
        """
        import numpy as np

        def _noise():
            return np.random.default_rng().normal()

        def jitter(rng, x):
            return x + _noise()
        """
    )
    findings = lint_project(mod, select=["RL013"])
    messages = " | ".join(f.message for f in findings)
    assert "jitter" in messages and "rng" in messages


def test_rl013_accepts_threaded_rng_and_seeded_generators():
    mod = source(
        """
        import numpy as np

        def _noise(rng):
            return rng.normal()

        def sample_devices(count, rng):
            return [_noise(rng) for _ in range(count)]

        def reference_draw():
            return np.random.default_rng(1234).normal()
        """
    )
    assert not lint_project(mod, select=["RL013"])


# -- RL014 impure-worker ----------------------------------------------------


def test_rl014_flags_worker_capturing_module_global_mutable():
    mod = source(
        """
        from repro.parallel import ParallelMap

        _CACHE = {}

        def bad_task(task, context):
            return _CACHE[task]

        def run(tasks, ctx):
            pmap = ParallelMap(workers=2)
            return pmap.map(bad_task, tasks, ctx)
        """
    )
    findings = lint_project(mod, select=["RL014"])
    assert rules_fired(findings) == {"RL014"}
    assert "_CACHE" in findings[0].message


def test_rl014_flags_lambda_worker():
    mod = source(
        """
        from repro.parallel import ParallelMap

        def run(tasks, ctx):
            pmap = ParallelMap(workers=2)
            return pmap.map(lambda t, c: t, tasks, ctx)
        """
    )
    findings = lint_project(mod, select=["RL014"])
    assert rules_fired(findings) == {"RL014"}


def test_rl014_flags_nested_def_worker():
    mod = source(
        """
        from repro.parallel import ParallelMap

        def run(tasks, ctx):
            def task(t, c):
                return t

            pmap = ParallelMap(workers=2)
            return pmap.map(task, tasks, ctx)
        """
    )
    findings = lint_project(mod, select=["RL014"])
    assert rules_fired(findings) == {"RL014"}


def test_rl014_accepts_pure_module_level_worker():
    mod = source(
        """
        from repro.parallel import ParallelMap

        _SCALE = 2.0

        def good_task(task, context):
            return task * _SCALE

        def run(tasks, ctx):
            pmap = ParallelMap(workers=2)
            return pmap.map(good_task, tasks, ctx)
        """
    )
    # _SCALE is an immutable module constant: safe to re-import per worker.
    assert not lint_project(mod, select=["RL014"])


def test_rl014_submission_site_marker_extends_defaults():
    marker = source(
        """
        LINT_SUBMISSION_SITES = {"MyPool.run": 0}

        class MyPool:
            def run(self, fn):
                return fn()
        """,
        path="pkg/pool.py",
        module="pkg.pool",
    )
    user = source(
        """
        from pkg.pool import MyPool

        def launch():
            pool = MyPool()
            return pool.run(lambda: 1)
        """,
        path="pkg/use.py",
        module="pkg.use",
    )
    project = Project([marker, user])
    sites = submission_sites(project)
    assert sites["MyPool.run"] == 0
    assert sites["ParallelMap.map"] == 0  # defaults survive the merge
    findings = lint_sources(project, select=["RL014"])
    assert rules_fired(findings) == {"RL014"}


# -- RL015 dead-private-helper ----------------------------------------------


def test_rl015_flags_unreferenced_private_helper():
    mod = source(
        """
        def _unused_helper():
            return 1

        def _used_helper():
            return 2

        def public():
            return _used_helper()
        """
    )
    findings = lint_project(mod, select=["RL015"])
    assert [f.rule for f in findings] == ["RL015"]
    assert "_unused_helper" in findings[0].message
    assert findings[0].severity == "warning"


def test_rl015_exempts_decorated_and_cross_module_references():
    mod = source(
        """
        def fixture(fn):
            return fn

        @fixture
        def _registered():
            return 1
        """,
        path="pkg/a.py",
        module="pkg.a",
    )
    other = source(
        """
        from pkg.b import _shared

        def use():
            return _shared()
        """,
        path="pkg/c.py",
        module="pkg.c",
    )
    shared = source(
        """
        def _shared():
            return 3
        """,
        path="pkg/b.py",
        module="pkg.b",
    )
    assert not lint_project(mod, other, shared, select=["RL015"])


# -- acceptance against the real tree ---------------------------------------


def _sweep_emit_kinds():
    """Independent AST sweep: every constant-kind ``.emit(`` call."""
    kinds = set()
    for dirpath, dirnames, filenames in os.walk(
        os.path.join(SRC_ROOT, "repro")
    ):
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for name in filenames:
            if not name.endswith(".py"):
                continue
            with open(
                os.path.join(dirpath, name), "r", encoding="utf-8"
            ) as handle:
                tree = ast.parse(handle.read())
            for node in ast.walk(tree):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "emit"
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)
                ):
                    kinds.add(node.args[0].value)
    return kinds


def test_registry_covers_every_emit_site():
    from repro.telemetry.schema import EVENT_SCHEMAS

    swept = _sweep_emit_kinds()
    assert swept, "the tree must contain emit() sites"
    assert swept == set(EVENT_SCHEMAS), (
        "committed registry drifted from the emit() sites; regenerate "
        "with `python -m repro.lint schema`"
    )


def test_extraction_matches_committed_registry():
    from repro.telemetry.schema import EVENT_SCHEMAS

    project, errors = load_project([SRC_ROOT])
    assert not errors
    schemas = extract_event_schemas(project)
    assert set(schemas) == set(EVENT_SCHEMAS)
    for kind, schema in schemas.items():
        entry = EVENT_SCHEMAS[kind]
        assert tuple(sorted(schema.fields)) == tuple(entry["fields"]), kind
        assert schema.extra == entry["extra"], kind


def test_repo_is_clean_under_flow_rules():
    findings = lint_paths([SRC_ROOT], select=FLOW_RULES)
    assert findings == [], [f.to_dict() for f in findings]
