"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A fresh seeded generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_images(rng):
    """A small batch of NCHW images."""
    return rng.normal(size=(4, 3, 8, 8))
