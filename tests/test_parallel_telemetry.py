"""Worker-side telemetry capture and the parent-side merge.

A pool worker records its chunk's events/metrics into a MemorySink
session and ships them back; the parent merges metrics into its own
registry and re-emits the events stamped with `worker_pid`.  The
observable contract: running under a pool loses *no* telemetry relative
to serial, modulo ordering.
"""

from collections import Counter

import numpy as np
import pytest

from repro import telemetry
from repro.core import evaluate_defect_accuracy
from repro.datasets import DataLoader, make_synthetic_pair
from repro.models import MLP
from repro.telemetry import MemorySink, MetricsRegistry


# -- MetricsRegistry.dump / merge --------------------------------------------


def test_dump_round_trips_through_merge():
    source = MetricsRegistry(enabled=True)
    source.counter("draws").inc(3)
    source.gauge("loss").set(0.25)
    source.histogram("acc").observe(10.0)
    source.histogram("acc").observe(20.0)

    target = MetricsRegistry(enabled=True)
    target.counter("draws").inc(1)
    target.histogram("acc").observe(5.0)
    target.merge(source.dump())

    assert target.counter("draws").value == 4
    assert target.gauge("loss").value == 0.25
    assert sorted(target.histogram("acc").values) == [5.0, 10.0, 20.0]


def test_merge_gauge_is_last_wins_and_skips_unset():
    source = MetricsRegistry(enabled=True)
    source.gauge("set").set(2.0)
    source.gauge("unset")  # never written; must not clobber the target

    target = MetricsRegistry(enabled=True)
    target.gauge("set").set(1.0)
    target.gauge("unset").set(9.0)
    target.merge(source.dump())

    assert target.gauge("set").value == 2.0
    assert target.gauge("unset").value == 9.0


def test_merge_into_disabled_registry_is_noop():
    source = MetricsRegistry(enabled=True)
    source.counter("draws").inc(5)
    disabled = MetricsRegistry(enabled=False)
    disabled.merge(source.dump())  # must not raise or allocate instruments
    assert disabled.snapshot()["counters"] == {}


# -- end-to-end capture through a real pool ----------------------------------


@pytest.fixture(scope="module")
def model():
    return MLP(48, [16], 4, rng=np.random.default_rng(7))


@pytest.fixture(scope="module")
def loader():
    _, test = make_synthetic_pair(
        num_classes=4, image_size=4, train_size=8, test_size=24,
        seed=0, bandwidth=1, channels=3,
    )
    return DataLoader(test, 24, shuffle=False)


def _run_instrumented(model, loader, workers):
    sink = MemorySink()
    with telemetry.session(sink=sink) as run:
        evaluation = evaluate_defect_accuracy(
            model, loader, 0.05, num_runs=4, seed=11, workers=workers
        )
        snapshot = run.metrics.snapshot()
    return evaluation, snapshot, sink.events


def test_pool_run_loses_no_per_draw_telemetry(model, loader):
    evaluation, metrics, events = _run_instrumented(model, loader, workers=2)

    assert metrics["counters"]["eval/fault_draws_total"] == 4
    assert metrics["counters"]["parallel/tasks_total"] == 4
    assert metrics["histograms"]["eval/defect_accuracy"]["count"] == 4

    draws = [e for e in events if e["kind"] == "defect_draw"]
    assert len(draws) == 4
    # Per-draw provenance survives the hop: same seeds/accuracies as the
    # result, each event stamped with the worker that produced it.
    assert sorted(e["seed"] for e in draws) == [11, 12, 13, 14]
    assert Counter(e["accuracy"] for e in draws) == Counter(
        evaluation.run_accuracies
    )
    assert all(e["worker_pid"] for e in draws)

    kinds = {e["kind"] for e in events}
    assert "parallel_map_start" in kinds
    assert "parallel_map_end" in kinds
    assert "parallel_chunk" in kinds
    # Worker session bookkeeping must not leak into the parent stream.
    assert "run_start" not in {e["kind"] for e in events[1:]}


def test_pool_and_serial_telemetry_agree_on_the_pipeline_counts(model, loader):
    _, serial_metrics, serial_events = _run_instrumented(model, loader, 0)
    _, pool_metrics, pool_events = _run_instrumented(model, loader, 2)

    assert (
        pool_metrics["counters"]["eval/fault_draws_total"]
        == serial_metrics["counters"]["eval/fault_draws_total"]
    )
    serial_draws = [e for e in serial_events if e["kind"] == "defect_draw"]
    pool_draws = [e for e in pool_events if e["kind"] == "defect_draw"]
    strip = lambda e: (e["p_sa"], e["draw"], e["seed"], e["accuracy"])  # noqa: E731
    assert sorted(map(strip, pool_draws)) == sorted(map(strip, serial_draws))


def test_disabled_telemetry_ships_nothing(model, loader):
    # No session active: capture is off and the pool path must not
    # resurrect telemetry or crash shipping a None payload.
    evaluation = evaluate_defect_accuracy(
        model, loader, 0.05, num_runs=4, seed=11, workers=2
    )
    assert evaluation.num_runs == 4
    assert not telemetry.current().enabled
