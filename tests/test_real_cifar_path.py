"""The paper-scale loader path: real CIFAR batches are used when present."""

import os
import pickle

import numpy as np
import pytest

from repro.experiments import get_scale
from repro.experiments.runner import make_loaders


def write_fake_cifar10(root):
    base = os.path.join(root, "data", "cifar-10-batches-py")
    os.makedirs(base)
    rng = np.random.default_rng(0)
    for i in range(1, 6):
        with open(os.path.join(base, f"data_batch_{i}"), "wb") as handle:
            pickle.dump(
                {
                    b"data": rng.integers(
                        0, 256, size=(4, 3072), dtype=np.uint8
                    ),
                    b"labels": rng.integers(0, 10, size=4).tolist(),
                },
                handle,
            )
    with open(os.path.join(base, "test_batch"), "wb") as handle:
        pickle.dump(
            {
                b"data": rng.integers(0, 256, size=(6, 3072), dtype=np.uint8),
                b"labels": rng.integers(0, 10, size=6).tolist(),
            },
            handle,
        )


def test_real_cifar_used_when_present(tmp_path, monkeypatch):
    write_fake_cifar10(str(tmp_path))
    monkeypatch.chdir(tmp_path)
    scale = get_scale("ci").with_overrides(use_real_cifar=True)
    train, test = make_loaders(scale, 10)
    # Real data: 20 train / 6 test samples of 32x32, not the synthetic
    # sizes from the scale.
    assert len(train.dataset) == 20
    assert len(test.dataset) == 6
    image, _ = train.dataset[0]
    assert image.shape == (3, 32, 32)


def test_synthetic_fallback_when_absent(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    scale = get_scale("ci").with_overrides(use_real_cifar=True)
    train, _ = make_loaders(scale, 10)
    assert len(train.dataset) == scale.train_size  # synthetic sizes


def test_flag_off_ignores_real_data(tmp_path, monkeypatch):
    write_fake_cifar10(str(tmp_path))
    monkeypatch.chdir(tmp_path)
    scale = get_scale("ci")  # use_real_cifar defaults False
    train, _ = make_loaders(scale, 10)
    assert len(train.dataset) == scale.train_size
