"""Tests for differential-pair tiled crossbar mapping."""

import numpy as np
import pytest

from repro.reram import (
    CrossbarMapper,
    ReRAMDeviceModel,
    StuckAtFaultSpec,
)

FINE = ReRAMDeviceModel(g_off=1e-6, g_on=1e-4, levels=4096)


def test_roundtrip_within_quantisation(rng):
    mapper = CrossbarMapper(device=FINE, tile_size=16)
    w = rng.normal(size=(12, 10))
    mapped = mapper.map_matrix(w)
    back = mapped.read_back()
    assert back.shape == w.shape
    step = np.max(np.abs(w)) / (FINE.levels - 1)
    assert np.max(np.abs(back - w)) < 4 * step


def test_tiling_splits_large_matrices(rng):
    mapper = CrossbarMapper(device=FINE, tile_size=8)
    w = rng.normal(size=(20, 10))
    mapped = mapper.map_matrix(w)
    # ceil(20/8) x ceil(10/8) = 3 x 2 pairs -> 12 physical crossbars.
    assert mapped.num_tiles == 12
    np.testing.assert_allclose(
        mapped.read_back(), w, atol=4 * np.max(np.abs(w)) / (FINE.levels - 1)
    )


def test_matvec_matches_dense(rng):
    mapper = CrossbarMapper(device=FINE, tile_size=8)
    w = rng.normal(size=(12, 9))
    mapped = mapper.map_matrix(w)
    x = rng.normal(size=12)
    np.testing.assert_allclose(mapped.matvec(x), x @ w, rtol=0.01, atol=0.01)


def test_matvec_batched(rng):
    mapper = CrossbarMapper(device=FINE, tile_size=8)
    w = rng.normal(size=(6, 4))
    mapped = mapper.map_matrix(w)
    x = rng.normal(size=(3, 6))
    out = mapped.matvec(x)
    assert out.shape == (3, 4)
    np.testing.assert_allclose(out, x @ w, rtol=0.01, atol=0.01)


def test_matvec_validation(rng):
    mapper = CrossbarMapper(device=FINE, tile_size=8)
    mapped = mapper.map_matrix(rng.normal(size=(6, 4)))
    with pytest.raises(ValueError):
        mapped.matvec(np.zeros((2, 7)))


def test_fault_injection_and_clear(rng):
    mapper = CrossbarMapper(device=FINE, tile_size=8)
    w = rng.normal(size=(8, 8))
    mapped = mapper.map_matrix(w)
    count = mapped.inject_faults(StuckAtFaultSpec(0.3), rng)
    assert count > 0
    faulty = mapped.read_back()
    assert not np.allclose(faulty, w, atol=1e-3)
    mapped.clear_faults()
    # After clearing, cells remain at their last programmed values... they
    # were pinned; reprogramming is not automatic, so read_back reflects
    # pinned-then-released conductances.  Re-map to recover exactly.
    remapped = mapper.map_matrix(w)
    np.testing.assert_allclose(
        remapped.read_back(), w, atol=4 * np.max(np.abs(w)) / (FINE.levels - 1)
    )


def test_sa1_fault_creates_large_weight(rng):
    """A stuck-on cell in the positive array drives the weight toward +w_max."""
    mapper = CrossbarMapper(device=FINE, tile_size=4)
    w = np.full((4, 4), 0.01)
    w[0, 0] = 1.0  # defines w_max = 1
    mapped = mapper.map_matrix(w)
    from repro.reram import FAULT_SA1

    pos, _ = mapped.tile_grid[0][0]
    fmap = np.zeros((4, 4), dtype=np.int8)
    fmap[1, 1] = FAULT_SA1
    pos.set_fault_map(fmap)
    faulty = mapped.read_back()
    assert faulty[1, 1] > 0.9  # pinned near +w_max


def test_sa0_fault_zeroes_weight(rng):
    from repro.reram import FAULT_SA0

    mapper = CrossbarMapper(device=FINE, tile_size=4)
    w = np.full((4, 4), 0.5)
    mapped = mapper.map_matrix(w)
    pos, _ = mapped.tile_grid[0][0]
    fmap = np.zeros((4, 4), dtype=np.int8)
    fmap[2, 2] = FAULT_SA0
    pos.set_fault_map(fmap)
    faulty = mapped.read_back()
    assert abs(faulty[2, 2]) < 0.01


def test_zero_matrix_maps_cleanly():
    mapper = CrossbarMapper(device=FINE, tile_size=4)
    mapped = mapper.map_matrix(np.zeros((4, 4)))
    np.testing.assert_allclose(mapped.read_back(), 0.0, atol=1e-12)


def test_mapper_validation(rng):
    with pytest.raises(ValueError):
        CrossbarMapper(tile_size=0)
    mapper = CrossbarMapper(device=FINE, tile_size=4)
    with pytest.raises(ValueError):
        mapper.map_matrix(rng.normal(size=(2, 2, 2)))
