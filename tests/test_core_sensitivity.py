"""Tests for per-layer fault-sensitivity analysis."""

import numpy as np
import pytest

from repro import nn
from repro.core import Trainer, layer_sensitivity
from repro.datasets import ArrayDataset, DataLoader
from repro.models import MLP
from repro.reram.deploy import crossbar_parameters


@pytest.fixture
def trained(rng):
    n = 90
    centers = rng.normal(size=(3, 8)) * 3
    labels = rng.integers(0, 3, size=n)
    images = centers[labels] + rng.normal(size=(n, 8)) * 0.3
    loader = DataLoader(
        ArrayDataset(images.reshape(n, 1, 2, 4), labels), 30,
        shuffle=True, seed=0,
    )
    model = MLP(8, [16], 3, rng=rng)
    opt = nn.SGD(model.parameters(), lr=0.1, momentum=0.9)
    Trainer(model, opt).fit(loader, 8)
    return model, loader


def test_covers_every_crossbar_tensor(trained, rng):
    model, loader = trained
    results = layer_sensitivity(model, loader, 0.2, num_runs=3, rng=rng)
    expected = {name for name, _ in crossbar_parameters(model)}
    assert {r.name for r in results} == expected


def test_sorted_most_sensitive_first(trained, rng):
    model, loader = trained
    results = layer_sensitivity(model, loader, 0.3, num_runs=3, rng=rng)
    drops = [r.accuracy_drop for r in results]
    assert drops == sorted(drops, reverse=True)


def test_model_left_untouched(trained, rng):
    model, loader = trained
    before = {n: p.data.copy() for n, p in model.named_parameters()}
    layer_sensitivity(model, loader, 0.3, num_runs=2, rng=rng)
    for n, p in model.named_parameters():
        np.testing.assert_array_equal(p.data, before[n])


def test_zero_rate_zero_drop(trained, rng):
    model, loader = trained
    results = layer_sensitivity(model, loader, 0.0, num_runs=2, rng=rng)
    for r in results:
        assert r.accuracy_drop == pytest.approx(0.0)


def test_reports_weight_counts(trained, rng):
    model, loader = trained
    results = layer_sensitivity(model, loader, 0.1, num_runs=1, rng=rng)
    by_name = {r.name: r for r in results}
    assert by_name["net.layer1.weight"].num_weights == 16 * 8


def test_invalid_runs(trained, rng):
    model, loader = trained
    with pytest.raises(ValueError):
        layer_sensitivity(model, loader, 0.1, num_runs=0, rng=rng)


def test_reports_spread_and_draw_count(trained, rng):
    model, loader = trained
    results = layer_sensitivity(model, loader, 0.2, num_runs=4, rng=rng)
    for r in results:
        assert r.num_runs == 4
        assert r.std_accuracy >= 0.0
        # The spread cannot exceed the full accuracy range.
        assert r.std_accuracy <= 100.0


def test_std_matches_cell_accuracies(trained):
    model, loader = trained
    a = layer_sensitivity(model, loader, 0.2, num_runs=3, seed=21)
    b = layer_sensitivity(model, loader, 0.2, num_runs=3, seed=21)
    assert a == b  # std/num_runs ride the deterministic-seed contract
    assert any(r.std_accuracy > 0.0 for r in a)


def test_zero_rate_zero_std(trained, rng):
    model, loader = trained
    results = layer_sensitivity(model, loader, 0.0, num_runs=3, rng=rng)
    for r in results:
        assert r.std_accuracy == pytest.approx(0.0)
        assert r.num_runs == 3
