"""Tests for structured (channel) pruning."""

import numpy as np
import pytest

from repro import nn
from repro.core import Trainer, evaluate_accuracy
from repro.datasets import DataLoader, make_synthetic_pair
from repro.models import SimpleCNN
from repro.pruning import (
    channel_norms,
    channel_prune,
    channel_sparsity,
    column_savings,
    finetune_channel_pruned,
)


@pytest.fixture
def cnn(rng):
    return SimpleCNN(in_channels=3, num_classes=4, image_size=8, width=8,
                     rng=rng)


def test_channel_norms_shape(cnn):
    conv = cnn.features[0]
    norms = channel_norms(conv)
    assert norms.shape == (conv.out_channels,)
    assert np.all(norms > 0)


def test_channel_prune_zeroes_whole_channels(cnn):
    channel_prune(cnn, 0.5)
    conv = cnn.features[0]
    norms = channel_norms(conv)
    assert np.sum(norms == 0.0) == conv.out_channels // 2
    # Zeroed channels are entirely zero (structured, not scattered).
    for idx in np.where(norms == 0.0)[0]:
        np.testing.assert_array_equal(conv.weight.data[idx], 0.0)


def test_channel_prune_keeps_strongest(cnn):
    conv = cnn.features[0]
    before = channel_norms(conv)
    strongest = int(np.argmax(before))
    channel_prune(cnn, 0.5)
    assert channel_norms(conv)[strongest] > 0


def test_channel_sparsity_metric(cnn):
    assert channel_sparsity(cnn) == 0.0
    channel_prune(cnn, 0.5)
    assert channel_sparsity(cnn) == pytest.approx(0.5, abs=0.1)


def test_min_channels_floor(rng):
    model = SimpleCNN(in_channels=1, num_classes=2, image_size=8, width=4,
                      rng=rng)
    channel_prune(model, 0.99, min_channels=1)
    for module in model.modules():
        if isinstance(module, nn.Conv2d):
            assert np.sum(channel_norms(module) > 0) >= 1


def test_column_savings_reports_all_convs(cnn):
    channel_prune(cnn, 0.5)
    savings = column_savings(cnn)
    assert len(savings) == 2  # SimpleCNN has two convs
    for fraction in savings.values():
        assert 0.0 <= fraction < 1.0


def test_forward_still_works_after_pruning(cnn, rng):
    channel_prune(cnn, 0.5)
    out = cnn(rng.normal(size=(2, 3, 8, 8)))
    assert out.shape == (2, 4)
    assert np.all(np.isfinite(out))


def test_validation(cnn):
    with pytest.raises(ValueError):
        channel_prune(cnn, 1.0)
    with pytest.raises(ValueError):
        channel_prune(cnn, 0.5, min_channels=0)


def test_finetune_preserves_channel_masks(rng):
    train_set, test_set = make_synthetic_pair(
        num_classes=4, image_size=8, train_size=200, test_size=100,
        seed=19, noise_sigma=0.4, max_shift=1,
    )
    train = DataLoader(train_set, 40, shuffle=True, seed=0)
    test = DataLoader(test_set, 100, shuffle=False)
    model = SimpleCNN(in_channels=3, num_classes=4, image_size=8, width=8,
                      rng=rng)
    opt = nn.SGD(model.parameters(), lr=0.1, momentum=0.9)
    Trainer(model, opt).fit(train, 6)
    acc_dense = evaluate_accuracy(model, test)

    masks = channel_prune(model, 0.5)
    finetune_channel_pruned(model, masks, train, epochs=4, lr=0.02)
    assert channel_sparsity(model) == pytest.approx(0.5, abs=0.1)
    acc_pruned = evaluate_accuracy(model, test)
    assert acc_pruned > 40.0  # still far above 25% chance
    assert acc_pruned > acc_dense - 30.0
