"""Tests for accuracy and defect evaluation."""

import numpy as np
import pytest

from repro import evaluate_accuracy, evaluate_defect_accuracy, nn
from repro.datasets import ArrayDataset, DataLoader
from repro.models import MLP


class ConstantModel(nn.Module):
    """Always predicts class 0 (plus a dummy weight so injectors work)."""

    def __init__(self, num_classes):
        super().__init__()
        self.num_classes = num_classes
        self.weight = nn.Parameter(np.ones((1, 1)))

    def forward(self, x):
        logits = np.zeros((x.shape[0], self.num_classes))
        logits[:, 0] = 1.0
        return logits


def make_loader(labels):
    labels = np.asarray(labels)
    images = np.zeros((len(labels), 1, 2, 2))
    return DataLoader(ArrayDataset(images, labels), 4, shuffle=False)


def test_accuracy_exact():
    loader = make_loader([0, 0, 1, 1])
    assert evaluate_accuracy(ConstantModel(2), loader) == pytest.approx(50.0)


def test_accuracy_all_correct():
    loader = make_loader([0, 0, 0])
    assert evaluate_accuracy(ConstantModel(2), loader) == pytest.approx(100.0)


def test_accuracy_restores_training_mode():
    model = ConstantModel(2)
    model.train()
    evaluate_accuracy(model, make_loader([0, 1]))
    assert model.training
    model.eval()
    evaluate_accuracy(model, make_loader([0, 1]))
    assert not model.training


def test_accuracy_empty_loader_raises():
    loader = DataLoader(
        ArrayDataset(np.zeros((3, 1)), np.zeros(3, dtype=int)),
        4,
        shuffle=False,
        drop_last=True,
    )
    with pytest.raises(ValueError):
        evaluate_accuracy(ConstantModel(2), loader)


def real_setup(rng, n=40):
    images = rng.normal(size=(n, 1, 2, 4))
    labels = rng.integers(0, 3, size=n)
    loader = DataLoader(ArrayDataset(images, labels), 20, shuffle=False)
    model = MLP(8, [8], 3, rng=rng)
    return model, loader


def test_defect_zero_rate_equals_clean(rng):
    model, loader = real_setup(rng)
    clean = evaluate_accuracy(model, loader)
    result = evaluate_defect_accuracy(model, loader, 0.0, num_runs=3, rng=rng)
    assert result.mean_accuracy == pytest.approx(clean)
    assert result.std_accuracy == 0.0


def test_defect_evaluation_restores_model(rng):
    model, loader = real_setup(rng)
    pristine = {n: p.data.copy() for n, p in model.named_parameters()}
    evaluate_defect_accuracy(model, loader, 0.3, num_runs=3, rng=rng)
    for n, p in model.named_parameters():
        np.testing.assert_array_equal(p.data, pristine[n])


def test_defect_runs_recorded(rng):
    model, loader = real_setup(rng)
    result = evaluate_defect_accuracy(model, loader, 0.1, num_runs=5, rng=rng)
    assert len(result.run_accuracies) == 5
    assert result.min_accuracy <= result.mean_accuracy <= result.max_accuracy
    assert result.p_sa == 0.1


def test_defect_mean_matches_runs(rng):
    model, loader = real_setup(rng)
    result = evaluate_defect_accuracy(model, loader, 0.2, num_runs=4, rng=rng)
    assert result.mean_accuracy == pytest.approx(
        float(np.mean(result.run_accuracies))
    )


def test_defect_deterministic_under_seed(rng):
    model, loader = real_setup(rng)
    a = evaluate_defect_accuracy(
        model, loader, 0.1, num_runs=3, rng=np.random.default_rng(7)
    )
    b = evaluate_defect_accuracy(
        model, loader, 0.1, num_runs=3, rng=np.random.default_rng(7)
    )
    assert a.run_accuracies == b.run_accuracies


def test_defect_high_rate_degrades_accuracy(rng):
    model, loader = real_setup(rng, n=60)
    low = evaluate_defect_accuracy(model, loader, 0.01, num_runs=5, rng=rng)
    high = evaluate_defect_accuracy(model, loader, 0.5, num_runs=5, rng=rng)
    assert high.mean_accuracy <= low.mean_accuracy + 5.0


def test_defect_invalid_runs(rng):
    model, loader = real_setup(rng)
    with pytest.raises(ValueError):
        evaluate_defect_accuracy(model, loader, 0.1, num_runs=0, rng=rng)


def test_defect_seed_provenance_recorded(rng):
    model, loader = real_setup(rng)
    result = evaluate_defect_accuracy(model, loader, 0.1, num_runs=3, seed=11)
    assert result.seed == 11
    assert result.num_runs == 3
    again = evaluate_defect_accuracy(model, loader, 0.1, num_runs=3, seed=11)
    assert again.run_accuracies == result.run_accuracies


def test_defect_seed_and_rng_are_mutually_exclusive(rng):
    model, loader = real_setup(rng)
    with pytest.raises(ValueError):
        evaluate_defect_accuracy(
            model, loader, 0.1, num_runs=2, rng=rng, seed=1
        )
