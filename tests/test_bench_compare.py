"""Tests for repro.bench.compare and the compare CLI's exit codes."""

import copy

import pytest

from repro.bench import RunnerConfig, compare_benches, render_comparison
from repro.bench.cli import main as bench_main
from repro.bench.compare import attribute_comparison, attribute_functions
from repro.bench.report import render_attribution
from repro.bench.runner import CaseResult
from repro.bench.schema import build_document, write_bench
from repro.bench.stats import describe


def _case(name, timings, params=None, profile=None):
    return CaseResult(
        name=name,
        suite="fast",
        params=params if params is not None else {"n": 10},
        repeats=len(timings),
        rejected=0,
        warmup=1,
        stats=describe(timings),
        profile=profile,
    )


def _doc(cases):
    provenance = {
        "timestamp": "2026-08-05T00:00:00",
        "git_sha": "0" * 40,
        "git_dirty": False,
        "python": "3.11.7",
        "numpy": "2.0",
        "platform": "test",
        "machine": "x86_64",
        "cpu_count": 1,
    }
    return build_document(
        "fast", RunnerConfig().to_dict(), provenance, cases
    )


BASE_TIMINGS = [0.010, 0.0101, 0.0099, 0.0102, 0.0098, 0.010, 0.0101]


def test_parity_is_ok():
    doc = _doc([_case("a", BASE_TIMINGS)])
    result = compare_benches(doc, copy.deepcopy(doc))
    assert result.ok
    assert [d.status for d in result.deltas] == ["ok"]


def test_3x_regression_is_flagged():
    baseline = _doc([_case("a", BASE_TIMINGS)])
    candidate = _doc([_case("a", [t * 3 for t in BASE_TIMINGS])])
    result = compare_benches(baseline, candidate)
    assert not result.ok
    (delta,) = result.regressions
    assert delta.name == "a"
    assert delta.ratio == pytest.approx(3.0)
    assert "slower" in delta.note


def test_3x_improvement_is_flagged_but_ok():
    baseline = _doc([_case("a", [t * 3 for t in BASE_TIMINGS])])
    candidate = _doc([_case("a", BASE_TIMINGS)])
    result = compare_benches(baseline, candidate)
    assert result.ok
    assert [d.status for d in result.deltas] == ["improvement"]


def test_slowdown_within_noise_is_not_a_regression():
    # 50% slower nominally, but the samples are so noisy (huge MAD) that
    # the absolute gap does not clear the noise floor.
    noisy = [0.01, 0.03, 0.005, 0.04, 0.02, 0.035, 0.008]
    baseline = _doc([_case("a", noisy)])
    candidate = _doc([_case("a", [t * 1.5 for t in noisy])])
    result = compare_benches(baseline, candidate, noise_mads=3.0)
    assert result.ok
    assert result.deltas[0].note == "slower, but within measurement noise"


def test_threshold_is_respected():
    baseline = _doc([_case("a", BASE_TIMINGS)])
    candidate = _doc([_case("a", [t * 1.2 for t in BASE_TIMINGS])])
    assert compare_benches(baseline, candidate, threshold=0.25).ok
    assert not compare_benches(baseline, candidate, threshold=0.1).ok


def test_differing_params_are_incomparable():
    baseline = _doc([_case("a", BASE_TIMINGS, params={"n": 10})])
    candidate = _doc(
        [_case("a", [t * 5 for t in BASE_TIMINGS], params={"n": 99})]
    )
    result = compare_benches(baseline, candidate)
    assert result.ok  # not a regression: sizes differ
    assert result.deltas[0].status == "incomparable"


def test_missing_and_new_cases_reported_but_ok():
    baseline = _doc([_case("old", BASE_TIMINGS)])
    candidate = _doc([_case("new", BASE_TIMINGS)])
    result = compare_benches(baseline, candidate)
    assert result.ok
    statuses = {d.name: d.status for d in result.deltas}
    assert statuses == {"old": "missing", "new": "new"}


def test_validation():
    doc = _doc([_case("a", BASE_TIMINGS)])
    with pytest.raises(ValueError):
        compare_benches(doc, doc, threshold=0.0)
    with pytest.raises(ValueError):
        compare_benches(doc, doc, noise_mads=-1.0)


def test_render_comparison_mentions_verdict():
    baseline = _doc([_case("a", BASE_TIMINGS)])
    candidate = _doc([_case("a", [t * 3 for t in BASE_TIMINGS])])
    text = render_comparison(compare_benches(baseline, candidate))
    assert "REGRESSION" in text
    text = render_comparison(compare_benches(baseline, baseline))
    assert "OK" in text


# -- attribution ------------------------------------------------------------


def _profile(functions, interval=0.01, repeats=10):
    return {
        "interval": interval,
        "samples": sum(f["self"] for f in functions.values()),
        "repeats": repeats,
        "functions": functions,
    }


def test_attribute_functions_ranks_movers_by_abs_delta():
    base = _case(
        "a",
        BASE_TIMINGS,
        profile=_profile(
            {
                "f.py:hot": {"self": 10, "total": 10},
                "f.py:steady": {"self": 5, "total": 15},
            }
        ),
    )
    cand = _case(
        "a",
        BASE_TIMINGS,
        profile=_profile(
            {
                "f.py:hot": {"self": 40, "total": 40},
                "f.py:steady": {"self": 5, "total": 45},
                "f.py:fresh": {"self": 2, "total": 2},
            }
        ),
    )
    movers = attribute_functions(base.to_dict(), cand.to_dict())
    assert [m["function"] for m in movers] == [
        "f.py:hot",
        "f.py:fresh",
        "f.py:steady",
    ]
    # self seconds per repeat: samples * interval / repeats.
    hot = movers[0]
    assert hot["baseline_self"] == pytest.approx(10 * 0.01 / 10)
    assert hot["candidate_self"] == pytest.approx(40 * 0.01 / 10)
    assert hot["delta"] == pytest.approx(0.03)
    # Functions present on one side only default the other side to 0.
    assert movers[1]["baseline_self"] == 0.0
    assert movers[2]["delta"] == pytest.approx(0.0)


def test_attribute_functions_requires_profiles_on_both_sides():
    plain = _case("a", BASE_TIMINGS)
    profiled = _case(
        "a",
        BASE_TIMINGS,
        profile=_profile({"f.py:hot": {"self": 3, "total": 3}}),
    )
    assert attribute_functions(plain.to_dict(), profiled.to_dict()) is None
    assert attribute_functions(profiled.to_dict(), plain.to_dict()) is None
    empty = _case("a", BASE_TIMINGS, profile=_profile({}))
    assert attribute_functions(profiled.to_dict(), empty.to_dict()) is None


def test_attribute_comparison_covers_only_mutually_profiled_cases():
    functions = {"f.py:hot": {"self": 4, "total": 4}}
    baseline = _doc(
        [
            _case("both", BASE_TIMINGS, profile=_profile(functions)),
            _case("plain", BASE_TIMINGS),
            _case("base_only", BASE_TIMINGS, profile=_profile(functions)),
        ]
    )
    candidate = _doc(
        [
            _case("both", BASE_TIMINGS, profile=_profile(functions)),
            _case("plain", BASE_TIMINGS),
            _case("cand_only", BASE_TIMINGS, profile=_profile(functions)),
        ]
    )
    attribution = attribute_comparison(baseline, candidate)
    assert list(attribution) == ["both"]


def test_render_attribution_marks_regressed_cases():
    functions = {"f.py:hot": {"self": 4, "total": 4}}
    slower = {"f.py:hot": {"self": 9, "total": 9}}
    baseline = _doc([_case("a", BASE_TIMINGS, profile=_profile(functions))])
    candidate = _doc([_case("a", BASE_TIMINGS, profile=_profile(slower))])
    attribution = attribute_comparison(baseline, candidate)
    text = render_attribution(attribution, top=5, regressed=["a"])
    assert "REGRESSION" in text
    assert "f.py:hot" in text
    assert "no attribution" in render_attribution({})


# -- CLI exit codes ---------------------------------------------------------


def test_cli_compare_exit_codes(tmp_path, capsys):
    base_path = str(tmp_path / "BENCH_base.json")
    good_path = str(tmp_path / "BENCH_good.json")
    bad_path = str(tmp_path / "BENCH_bad.json")
    write_bench(base_path, _doc([_case("a", BASE_TIMINGS)]))
    write_bench(good_path, _doc([_case("a", BASE_TIMINGS)]))
    write_bench(
        bad_path, _doc([_case("a", [t * 3 for t in BASE_TIMINGS])])
    )

    assert bench_main(["compare", base_path, good_path]) == 0
    assert bench_main(["compare", base_path, bad_path]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out


def test_cli_compare_json_output(tmp_path, capsys):
    import json

    base_path = str(tmp_path / "BENCH_base.json")
    write_bench(base_path, _doc([_case("a", BASE_TIMINGS)]))
    assert bench_main(["compare", base_path, base_path, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["deltas"][0]["name"] == "a"


def test_cli_compare_attribute_prints_movers(tmp_path, capsys):
    base_path = str(tmp_path / "BENCH_base.json")
    cand_path = str(tmp_path / "BENCH_cand.json")
    functions = {"f.py:hot": {"self": 4, "total": 4}}
    slower = {"f.py:hot": {"self": 9, "total": 9}}
    write_bench(
        base_path, _doc([_case("a", BASE_TIMINGS, profile=_profile(functions))])
    )
    write_bench(
        cand_path, _doc([_case("a", BASE_TIMINGS, profile=_profile(slower))])
    )
    assert bench_main(["compare", base_path, cand_path, "--attribute"]) == 0
    out = capsys.readouterr().out
    assert "f.py:hot" in out
    assert "Δ/repeat" in out

    import json

    assert (
        bench_main(["compare", base_path, cand_path, "--attribute", "--json"])
        == 0
    )
    payload = json.loads(capsys.readouterr().out)
    assert payload["attribution"]["a"][0]["function"] == "f.py:hot"


def test_cli_compare_attribute_without_profiles_says_so(tmp_path, capsys):
    base_path = str(tmp_path / "BENCH_base.json")
    write_bench(base_path, _doc([_case("a", BASE_TIMINGS)]))
    assert bench_main(["compare", base_path, base_path, "--attribute"]) == 0
    assert "no attribution available" in capsys.readouterr().out


def test_cli_compare_attribute_rejects_non_positive(tmp_path, capsys):
    base_path = str(tmp_path / "BENCH_base.json")
    write_bench(base_path, _doc([_case("a", BASE_TIMINGS)]))
    assert (
        bench_main(["compare", base_path, base_path, "--attribute", "0"]) == 2
    )
    assert "--attribute" in capsys.readouterr().err


def test_cli_compare_rejects_invalid_files(tmp_path, capsys):
    bad = tmp_path / "BENCH_x.json"
    bad.write_text("{}")
    ok = tmp_path / "BENCH_ok.json"
    write_bench(str(ok), _doc([_case("a", BASE_TIMINGS)]))
    assert bench_main(["compare", str(bad), str(ok)]) == 2
    assert bench_main(["compare", str(tmp_path / "nope.json"), str(ok)]) == 2
