"""Tests for repro.sweep.plan (deterministic expansion + digests)."""

from repro.sweep import expand_plan, load_spec


def make_spec(**overrides):
    raw = {
        "name": "t",
        "axes": {
            "arch": ["mlp"],
            "p_sa": [0.02, 0.1],
            "variant": ["baseline", "one_shot"],
        },
        "seeds": [0, 1],
    }
    raw.update(overrides)
    return load_spec(raw)


def test_expansion_size_and_order_deterministic():
    spec = make_spec()
    plan_a = expand_plan(spec, "smoke")
    plan_b = expand_plan(spec, "smoke")
    assert len(plan_a.cells) == 1 * 2 * 2 * 2
    assert [c.digest for c in plan_a.cells] == [c.digest for c in plan_b.cells]
    assert [c.index for c in plan_a.cells] == list(range(len(plan_a.cells)))


def test_baseline_collapses_training_rate_axis():
    raw = {
        "name": "t",
        "axes": {
            "arch": ["mlp"],
            "p_sa": [0.1],
            "variant": ["baseline", "one_shot"],
            "p_sa_train": [0.01, 0.05],
        },
    }
    plan = expand_plan(load_spec(raw), "smoke")
    baselines = [c for c in plan.cells if c.variant == "baseline"]
    trained = [c for c in plan.cells if c.variant == "one_shot"]
    # the two baseline grid points collapse to one cell; trained don't
    assert len(baselines) == 1
    assert baselines[0].p_sa_train is None
    assert len(trained) == 2


def test_profiles_and_seeds_change_digests():
    spec = make_spec()
    smoke = {c.digest for c in expand_plan(spec, "smoke").cells}
    full = {c.digest for c in expand_plan(spec, "full").cells}
    assert not smoke & full
    seeds = {c.seed for c in expand_plan(spec, "smoke").cells}
    assert seeds == {0, 1}


def test_rename_keeps_digests_but_overrides_change_them():
    base = make_spec()
    renamed = make_spec(name="other")
    assert [c.digest for c in expand_plan(base, "smoke").cells] == \
        [c.digest for c in expand_plan(renamed, "smoke").cells]
    scaled = make_spec(profiles={"smoke": {"train_size": 64}})
    assert [c.digest for c in expand_plan(base, "smoke").cells] != \
        [c.digest for c in expand_plan(scaled, "smoke").cells]


def test_run_id_format_and_by_digest():
    plan = expand_plan(make_spec(), "smoke")
    for cell in plan.cells:
        assert cell.run_id == f"cell-{cell.digest[:12]}"
    assert set(plan.by_digest()) == {c.digest for c in plan.cells}


def test_summary_counts():
    summary = expand_plan(make_spec(), "smoke").summary()
    assert summary["cells"] == 8
    assert summary["axes"]["seeds"] == 2
    assert summary["axes"]["p_sa_train"] == 1


def test_cell_label_mentions_the_point():
    cell = expand_plan(make_spec(), "smoke").cells[0]
    label = cell.label()
    assert cell.arch in label and f"p_sa={cell.p_sa:g}" in label
