"""Tests for the versioned BENCH_*.json schema and provenance capture."""

import json

import pytest

from repro.bench import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    RunnerConfig,
    SchemaError,
    collect_provenance,
    load_bench,
    validate_bench,
    write_bench,
)
from repro.bench.runner import CaseResult
from repro.bench.schema import build_document
from repro.bench.stats import describe


def _document():
    result = CaseResult(
        name="toy/add",
        suite="fast",
        params={"n": 10},
        repeats=5,
        rejected=0,
        warmup=2,
        stats=describe([0.1, 0.11, 0.09, 0.1, 0.1]),
    )
    return build_document(
        "fast", RunnerConfig().to_dict(), collect_provenance(), [result]
    )


def test_build_document_is_schema_valid():
    doc = _document()
    assert validate_bench(doc) is doc
    assert doc["schema"] == SCHEMA_NAME
    assert doc["schema_version"] == SCHEMA_VERSION


def test_provenance_fields_present():
    prov = collect_provenance()
    for key in ("git_sha", "python", "numpy", "platform", "cpu_count",
                "timestamp", "machine", "git_dirty"):
        assert key in prov
    # This test runs inside the repo's git checkout.
    assert isinstance(prov["git_sha"], str) and len(prov["git_sha"]) == 40
    assert prov["python"].count(".") >= 1


def test_provenance_degrades_outside_git(tmp_path):
    prov = collect_provenance(cwd=str(tmp_path))
    assert prov["git_sha"] is None
    assert prov["git_dirty"] is None
    assert prov["numpy"]  # non-git fields still populated


def test_round_trip(tmp_path):
    doc = _document()
    path = str(tmp_path / "BENCH_0.json")
    write_bench(path, doc)
    loaded = load_bench(path)
    assert loaded == doc


def test_validate_rejects_wrong_version():
    doc = _document()
    doc["schema_version"] = 99
    with pytest.raises(SchemaError, match="schema_version"):
        validate_bench(doc)


def test_validate_rejects_missing_cases_and_collects_all_problems():
    doc = _document()
    doc["cases"] = {}
    del doc["provenance"]["git_sha"]
    doc["suite"] = ""
    with pytest.raises(SchemaError) as excinfo:
        validate_bench(doc)
    problems = excinfo.value.problems
    assert any("cases" in p for p in problems)
    assert any("git_sha" in p for p in problems)
    assert any("suite" in p for p in problems)


def test_validate_rejects_malformed_case_stats():
    doc = _document()
    del doc["cases"]["toy/add"]["stats"]["mad"]
    doc["cases"]["toy/add"]["stats"]["median"] = "fast"
    with pytest.raises(SchemaError) as excinfo:
        validate_bench(doc)
    assert any("mad" in p for p in excinfo.value.problems)
    assert any("median" in p for p in excinfo.value.problems)


def test_load_rejects_non_json(tmp_path):
    path = tmp_path / "BENCH_bad.json"
    path.write_text("not json {")
    with pytest.raises(SchemaError, match="not valid JSON"):
        load_bench(str(path))


def test_written_file_is_plain_json(tmp_path):
    path = str(tmp_path / "BENCH_0.json")
    write_bench(path, _document())
    with open(path) as handle:
        raw = json.load(handle)
    assert raw["cases"]["toy/add"]["stats"]["count"] == 5
