"""Tests for the stuck-at-fault models."""

import numpy as np
import pytest

from repro.reram import (
    FAULT_NONE,
    FAULT_SA0,
    FAULT_SA1,
    SA0_SA1_RATIO,
    StuckAtFaultSpec,
    WeightSpaceFaultModel,
    sample_fault_map,
)


def test_spec_split_matches_paper_ratio():
    spec = StuckAtFaultSpec(0.1079)
    assert spec.p_sa0 == pytest.approx(0.0175)
    assert spec.p_sa1 == pytest.approx(0.0904)


def test_spec_components_sum_to_total():
    spec = StuckAtFaultSpec(0.05)
    assert spec.p_sa0 + spec.p_sa1 == pytest.approx(0.05)


def test_spec_custom_ratio():
    spec = StuckAtFaultSpec(0.1, ratio=(1.0, 1.0))
    assert spec.p_sa0 == pytest.approx(0.05)
    assert spec.p_sa1 == pytest.approx(0.05)


@pytest.mark.parametrize("p", [-0.1, 1.1])
def test_spec_invalid_rate(p):
    with pytest.raises(ValueError):
        StuckAtFaultSpec(p)


def test_spec_invalid_ratio():
    with pytest.raises(ValueError):
        StuckAtFaultSpec(0.1, ratio=(0.0, 0.0))
    with pytest.raises(ValueError):
        StuckAtFaultSpec(0.1, ratio=(-1.0, 2.0))


def test_sample_fault_map_statistics(rng):
    spec = StuckAtFaultSpec(0.1)
    fmap = sample_fault_map((200, 200), spec, rng)
    total_rate = np.count_nonzero(fmap) / fmap.size
    assert abs(total_rate - 0.1) < 0.01
    sa0 = np.mean(fmap == FAULT_SA0)
    sa1 = np.mean(fmap == FAULT_SA1)
    # Observed split should match 1.75 : 9.04.
    assert abs(sa0 / (sa0 + sa1) - 1.75 / 10.79) < 0.03


def test_sample_fault_map_zero_rate(rng):
    fmap = sample_fault_map((10, 10), StuckAtFaultSpec(0.0), rng)
    assert np.all(fmap == FAULT_NONE)


def test_sample_fault_map_full_rate(rng):
    fmap = sample_fault_map((50, 50), StuckAtFaultSpec(1.0), rng)
    assert np.all(fmap != FAULT_NONE)


def test_sample_fault_map_deterministic_under_seed():
    spec = StuckAtFaultSpec(0.2)
    a = sample_fault_map((20, 20), spec, np.random.default_rng(5))
    b = sample_fault_map((20, 20), spec, np.random.default_rng(5))
    np.testing.assert_array_equal(a, b)


# -- WeightSpaceFaultModel ---------------------------------------------------


def test_apply_zero_rate_is_identity(rng):
    model = WeightSpaceFaultModel()
    w = rng.normal(size=(10, 10))
    out = model.apply(w, 0.0, rng)
    np.testing.assert_array_equal(out, w)


def test_apply_does_not_mutate_input(rng):
    model = WeightSpaceFaultModel()
    w = rng.normal(size=(30, 30))
    w_copy = w.copy()
    model.apply(w, 0.5, rng)
    np.testing.assert_array_equal(w, w_copy)


def test_sa0_faults_become_zero(rng):
    model = WeightSpaceFaultModel(ratio=(1.0, 0.0))  # SA0 only
    w = rng.normal(size=(50, 50)) + 10.0  # no natural zeros
    out = model.apply(w, 0.3, rng)
    changed = out != w
    assert np.any(changed)
    np.testing.assert_array_equal(out[changed], 0.0)


def test_sa1_faults_pin_to_w_max(rng):
    model = WeightSpaceFaultModel(ratio=(0.0, 1.0))  # SA1 only
    w = rng.normal(size=(50, 50))
    w_max = np.max(np.abs(w))
    out = model.apply(w, 0.3, rng)
    changed = np.abs(out - w) > 1e-12
    assert np.any(changed)
    np.testing.assert_allclose(np.abs(out[changed]), w_max)


def test_sa1_signs_are_balanced(rng):
    model = WeightSpaceFaultModel(ratio=(0.0, 1.0))
    w = rng.normal(size=(100, 100))
    out = model.apply(w, 0.5, rng)
    w_max = np.max(np.abs(w))
    pinned = np.isclose(np.abs(out), w_max)
    signs = np.sign(out[pinned])
    assert abs(signs.mean()) < 0.1


def test_untouched_weights_unchanged(rng):
    model = WeightSpaceFaultModel()
    w = rng.normal(size=(100, 100))
    out = model.apply(w, 0.1, rng)
    w_max = np.max(np.abs(w))
    suspicious = (out == 0.0) | np.isclose(np.abs(out), w_max)
    np.testing.assert_array_equal(out[~suspicious], w[~suspicious])


def test_explicit_fault_map_respected(rng):
    model = WeightSpaceFaultModel()
    w = np.array([1.0, 2.0, 3.0])
    fmap = np.array([FAULT_NONE, FAULT_SA0, FAULT_SA1], dtype=np.int8)
    out = model.apply(w, 0.0, rng, fault_map=fmap)
    assert out[0] == 1.0
    assert out[1] == 0.0
    assert abs(out[2]) == 3.0  # w_max of the tensor


def test_fault_map_shape_mismatch_raises(rng):
    model = WeightSpaceFaultModel()
    with pytest.raises(ValueError):
        model.apply(np.ones(4), 0.1, rng, fault_map=np.zeros(3, dtype=np.int8))


def test_fixed_w_max_mode(rng):
    model = WeightSpaceFaultModel(ratio=(0.0, 1.0), w_max_mode="fixed", w_max_fixed=7.0)
    w = rng.normal(size=(40, 40)) * 0.01
    out = model.apply(w, 0.5, rng)
    changed = np.abs(out - w) > 0.5
    np.testing.assert_allclose(np.abs(out[changed]), 7.0)


def test_fault_rate_statistics(rng):
    model = WeightSpaceFaultModel()
    w = rng.normal(size=(300, 300))
    out = model.apply(w, 0.05, rng)
    changed_fraction = np.mean(np.abs(out - w) > 1e-15)
    # Some faults coincide with the original value; allow slack.
    assert 0.03 < changed_fraction <= 0.06


def test_model_validation():
    with pytest.raises(ValueError):
        WeightSpaceFaultModel(w_max_mode="bogus")
    with pytest.raises(ValueError):
        WeightSpaceFaultModel(w_max_mode="fixed", w_max_fixed=0.0)


def test_default_ratio_is_papers():
    assert SA0_SA1_RATIO == (1.75, 9.04)
    assert WeightSpaceFaultModel().ratio == SA0_SA1_RATIO
