"""Public-API quality gates: exports resolve, everything is documented."""

import importlib
import inspect
import os

import pytest

import repro

SUBPACKAGES = [
    "repro.nn",
    "repro.datasets",
    "repro.models",
    "repro.reram",
    "repro.core",
    "repro.pruning",
    "repro.quantization",
    "repro.baselines",
    "repro.experiments",
    "repro.lint",
    "repro.seeding",
    "repro.sweep",
]


@pytest.mark.parametrize("module_name", SUBPACKAGES + ["repro"])
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__"), f"{module_name} missing __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.{name} not importable"


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_public_items_documented(module_name):
    """Every exported class/function carries a docstring."""
    module = importlib.import_module(module_name)
    undocumented = []
    for name in module.__all__:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ or "").strip():
                undocumented.append(name)
    assert not undocumented, f"undocumented exports: {undocumented}"


def _documented_somewhere(cls, meth_name):
    """True if the method or any base-class version of it has a docstring
    (an override inherits the documented contract)."""
    for base in cls.__mro__:
        candidate = base.__dict__.get(meth_name)
        if candidate is not None and (candidate.__doc__ or "").strip():
            return True
    return False


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_public_classes_methods_documented(module_name):
    """Public methods of exported classes carry docstrings (their own or
    an inherited contract)."""
    module = importlib.import_module(module_name)
    undocumented = []
    for name in module.__all__:
        obj = getattr(module, name)
        if not inspect.isclass(obj):
            continue
        for meth_name, meth in inspect.getmembers(obj, inspect.isfunction):
            if meth_name.startswith("_"):
                continue
            if meth.__qualname__.split(".")[0] != obj.__name__:
                continue  # inherited from elsewhere
            if not _documented_somewhere(obj, meth_name):
                undocumented.append(f"{name}.{meth_name}")
    assert not undocumented, f"undocumented methods: {undocumented}"


@pytest.mark.parametrize("module_name", SUBPACKAGES + ["repro"])
def test_all_has_no_duplicates(module_name):
    module = importlib.import_module(module_name)
    assert len(module.__all__) == len(set(module.__all__)), (
        f"{module_name}.__all__ has duplicate entries"
    )


def test_public_api_matches_lint_rule():
    """RL004 (public-api-drift) holds for the whole tree: every __all__
    name is bound, every public top-level def/class is exported."""
    from repro.lint import lint_paths

    root = os.path.join(os.path.dirname(__file__), "..", "src")
    findings = lint_paths([root], select=["RL004"])
    assert not findings, "\n".join(
        f"{f.path}:{f.line}: {f.message}" for f in findings
    )


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_no_import_side_effects():
    """Importing repro must not seed or consume global numpy RNG state."""
    import numpy as np

    np.random.seed(0)
    before = np.random.random()
    np.random.seed(0)
    importlib.reload(importlib.import_module("repro.core"))
    after = np.random.random()
    assert before == after
