"""Tests for weight initialisers."""

import numpy as np
import pytest

from repro.nn import init


def test_fan_in_fan_out_linear():
    assert init.fan_in_fan_out((10, 20)) == (20, 10)


def test_fan_in_fan_out_conv():
    fan_in, fan_out = init.fan_in_fan_out((8, 4, 3, 3))
    assert fan_in == 4 * 9
    assert fan_out == 8 * 9


def test_fan_in_fan_out_invalid():
    with pytest.raises(ValueError):
        init.fan_in_fan_out((3,))


def test_kaiming_normal_std(rng):
    shape = (256, 128)
    w = init.kaiming_normal(shape, rng)
    expected_std = np.sqrt(2.0 / 128)
    assert abs(w.std() - expected_std) / expected_std < 0.05


def test_kaiming_uniform_bound(rng):
    shape = (64, 100)
    w = init.kaiming_uniform(shape, rng)
    bound = np.sqrt(6.0 / 100)
    assert np.all(np.abs(w) <= bound)
    assert w.std() > 0.5 * bound / np.sqrt(3)


def test_xavier_normal_std(rng):
    shape = (200, 300)
    w = init.xavier_normal(shape, rng)
    expected_std = np.sqrt(2.0 / 500)
    assert abs(w.std() - expected_std) / expected_std < 0.05


def test_xavier_uniform_bound(rng):
    w = init.xavier_uniform((50, 50), rng)
    bound = np.sqrt(6.0 / 100)
    assert np.all(np.abs(w) <= bound)


def test_initialisers_deterministic_under_seed():
    a = init.kaiming_normal((4, 4), np.random.default_rng(7))
    b = init.kaiming_normal((4, 4), np.random.default_rng(7))
    np.testing.assert_array_equal(a, b)
