"""Tests for the crossbar array."""

import numpy as np
import pytest

from repro.reram import (
    FAULT_SA0,
    FAULT_SA1,
    CrossbarArray,
    ReRAMDeviceModel,
    StuckAtFaultSpec,
)

IDEAL = ReRAMDeviceModel(g_off=0.0, g_on=1.0, levels=1001)


def test_initial_state_is_all_off():
    xbar = CrossbarArray(4, 4, IDEAL)
    np.testing.assert_allclose(xbar.read_conductances(), IDEAL.g_off)


def test_program_and_read_roundtrip(rng):
    xbar = CrossbarArray(8, 8, IDEAL)
    target = rng.uniform(0, 1, size=(8, 8))
    xbar.program(target)
    np.testing.assert_allclose(xbar.read_conductances(), target, atol=1e-3)


def test_program_shape_mismatch_raises():
    xbar = CrossbarArray(4, 4, IDEAL)
    with pytest.raises(ValueError):
        xbar.program(np.zeros((3, 3)))


def test_matvec_matches_numpy(rng):
    xbar = CrossbarArray(6, 5, IDEAL)
    g = rng.uniform(0, 1, size=(6, 5))
    xbar.program(g)
    v = rng.normal(size=6)
    np.testing.assert_allclose(xbar.matvec(v), v @ xbar.read_conductances())


def test_matvec_batched(rng):
    xbar = CrossbarArray(6, 5, IDEAL)
    xbar.program(rng.uniform(0, 1, size=(6, 5)))
    v = rng.normal(size=(3, 6))
    out = xbar.matvec(v)
    assert out.shape == (3, 5)
    np.testing.assert_allclose(out[0], xbar.matvec(v[0]))


def test_matvec_validation(rng):
    xbar = CrossbarArray(4, 4, IDEAL)
    with pytest.raises(ValueError):
        xbar.matvec(np.zeros(5))
    with pytest.raises(ValueError):
        xbar.matvec(np.zeros((2, 5)))
    with pytest.raises(ValueError):
        xbar.matvec(np.zeros((1, 1, 4)))


def test_inject_faults_pins_cells(rng):
    xbar = CrossbarArray(20, 20, IDEAL)
    xbar.program(np.full((20, 20), 0.5))
    xbar.inject_faults(StuckAtFaultSpec(0.5), rng)
    g = xbar.read_conductances()
    fmap = xbar.fault_map
    np.testing.assert_allclose(g[fmap == FAULT_SA0], IDEAL.g_off)
    np.testing.assert_allclose(g[fmap == FAULT_SA1], IDEAL.g_on)
    np.testing.assert_allclose(g[fmap == 0], 0.5)


def test_faults_survive_reprogramming(rng):
    xbar = CrossbarArray(10, 10, IDEAL)
    xbar.set_fault_map(np.full((10, 10), FAULT_SA1, dtype=np.int8))
    xbar.program(np.zeros((10, 10)))
    np.testing.assert_allclose(xbar.read_conductances(), IDEAL.g_on)


def test_clear_faults_restores_programmability(rng):
    xbar = CrossbarArray(5, 5, IDEAL)
    xbar.set_fault_map(np.full((5, 5), FAULT_SA0, dtype=np.int8))
    xbar.clear_faults()
    xbar.program(np.full((5, 5), 0.7))
    np.testing.assert_allclose(xbar.read_conductances(), 0.7, atol=1e-3)


def test_fault_count():
    xbar = CrossbarArray(4, 4, IDEAL)
    fmap = np.zeros((4, 4), dtype=np.int8)
    fmap[0, 0] = FAULT_SA0
    fmap[1, 1] = FAULT_SA1
    xbar.set_fault_map(fmap)
    assert xbar.fault_count == 2


def test_set_fault_map_validation():
    xbar = CrossbarArray(4, 4, IDEAL)
    with pytest.raises(ValueError):
        xbar.set_fault_map(np.zeros((3, 3), dtype=np.int8))
    with pytest.raises(ValueError):
        xbar.set_fault_map(np.full((4, 4), 9, dtype=np.int8))


def test_construction_validation():
    with pytest.raises(ValueError):
        CrossbarArray(0, 4)


def test_default_device_quantises():
    xbar = CrossbarArray(2, 2)  # default 16-level device
    target = np.full((2, 2), 1e-4)
    xbar.program(target)
    g = xbar.read_conductances()
    ladder = xbar.device.level_conductances()
    for value in g.reshape(-1):
        assert np.min(np.abs(ladder - value)) < 1e-12
