"""Tests for bit-sliced weight mapping."""

import numpy as np
import pytest

from repro.reram import (
    BitSlicedMapper,
    ReRAMDeviceModel,
    StuckAtFaultSpec,
)

# A 2-bit cell: 4 conductance levels.
CELL_2BIT = ReRAMDeviceModel(g_off=1e-6, g_on=1e-4, levels=4)


def test_roundtrip_exact_at_code_resolution(rng):
    mapper = BitSlicedMapper(device=CELL_2BIT, bits_per_slice=2, num_slices=4)
    w = rng.normal(size=(6, 5))
    mapped = mapper.map_matrix(w)
    back = mapped.read_back()
    # 8-bit total precision: error bounded by one code step.
    w_max = np.max(np.abs(w))
    step = w_max / (4**4 - 1)
    assert np.max(np.abs(back - w)) <= step / 2 + 1e-9


def test_slices_and_bits_counters(rng):
    mapper = BitSlicedMapper(device=CELL_2BIT, bits_per_slice=2, num_slices=3)
    mapped = mapper.map_matrix(rng.normal(size=(3, 3)))
    assert mapped.num_slices == 3
    assert mapped.total_bits == 6


def test_integer_codes_reconstruct_exactly():
    """Weights that are exact multiples of the code step reconstruct exactly."""
    mapper = BitSlicedMapper(device=CELL_2BIT, bits_per_slice=2, num_slices=2)
    # codes 0..15, scale below makes w_max=15*scale
    codes = np.array([[0, 3, 7], [15, -15, -8]], dtype=np.float64)
    w = codes * 0.1
    mapped = mapper.map_matrix(w)
    np.testing.assert_allclose(mapped.read_back(), w, atol=1e-9)


def test_high_slice_fault_hurts_more_than_low(rng):
    """A stuck-on fault in the most-significant slice perturbs the weight
    ~4x (levels) more than in the least-significant slice."""
    mapper = BitSlicedMapper(device=CELL_2BIT, bits_per_slice=2, num_slices=3)
    w = np.full((8, 8), 0.25)
    w[0, 0] = 1.0  # set w_max
    spec = StuckAtFaultSpec(1.0, ratio=(0.0, 1.0))  # every cell stuck on

    low = mapper.map_matrix(w)
    low.inject_faults_in_slice(0, spec, np.random.default_rng(0))
    err_low = np.abs(low.read_back() - w).mean()

    high = mapper.map_matrix(w)
    high.inject_faults_in_slice(2, spec, np.random.default_rng(0))
    err_high = np.abs(high.read_back() - w).mean()
    assert err_high > 3 * err_low


def test_clear_faults_then_remap(rng):
    mapper = BitSlicedMapper(device=CELL_2BIT, bits_per_slice=2, num_slices=2)
    w = rng.normal(size=(4, 4))
    mapped = mapper.map_matrix(w)
    mapped.inject_faults(StuckAtFaultSpec(0.5), rng)
    faulty = mapped.read_back()
    assert not np.allclose(faulty, w, atol=1e-3)
    fresh = mapper.map_matrix(w).read_back()
    w_max = np.max(np.abs(w))
    assert np.max(np.abs(fresh - w)) <= w_max / (4**2 - 1) + 1e-9


def test_zero_matrix(rng):
    mapper = BitSlicedMapper(device=CELL_2BIT, bits_per_slice=2, num_slices=2)
    mapped = mapper.map_matrix(np.zeros((3, 3)))
    np.testing.assert_allclose(mapped.read_back(), 0.0, atol=1e-12)


def test_validation(rng):
    with pytest.raises(ValueError):
        BitSlicedMapper(bits_per_slice=0)
    with pytest.raises(ValueError):
        # 1-bit device cannot hold 2-bit slices.
        BitSlicedMapper(
            device=ReRAMDeviceModel(levels=2), bits_per_slice=2
        )
    mapper = BitSlicedMapper(device=CELL_2BIT, bits_per_slice=2, num_slices=2)
    with pytest.raises(ValueError):
        mapper.map_matrix(np.zeros((2, 2, 2)))


def test_default_device_matches_slice_width():
    mapper = BitSlicedMapper(bits_per_slice=2)
    assert mapper.device.levels == 4
