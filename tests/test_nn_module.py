"""Tests for Parameter and Module base machinery."""

import numpy as np
import pytest

from repro import nn


class TwoLayer(nn.Module):
    def __init__(self, rng):
        super().__init__()
        self.fc1 = nn.Linear(4, 3, rng=rng)
        self.fc2 = nn.Linear(3, 2, rng=rng)

    def forward(self, x):
        return self.fc2(self.fc1(x))

    def backward(self, g):
        return self.fc1.backward(self.fc2.backward(g))


def test_parameter_holds_float64_and_zero_grad():
    p = nn.Parameter(np.ones((2, 2), dtype=np.float32))
    assert p.data.dtype == np.float64
    p.grad += 3.0
    p.zero_grad()
    assert np.all(p.grad == 0)


def test_parameter_shape_and_size():
    p = nn.Parameter(np.zeros((3, 5)))
    assert p.shape == (3, 5)
    assert p.size == 15


def test_named_parameters_order_and_prefixes(rng):
    model = TwoLayer(rng)
    names = [name for name, _ in model.named_parameters()]
    assert names == ["fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"]


def test_parameters_returns_all(rng):
    model = TwoLayer(rng)
    assert len(model.parameters()) == 4


def test_num_parameters(rng):
    model = TwoLayer(rng)
    assert model.num_parameters() == 4 * 3 + 3 + 3 * 2 + 2


def test_train_eval_propagates(rng):
    model = TwoLayer(rng)
    model.eval()
    assert not model.training
    assert not model.fc1.training
    model.train()
    assert model.fc2.training


def test_zero_grad_clears_all(rng):
    model = TwoLayer(rng)
    x = rng.normal(size=(5, 4))
    out = model(x)
    model.backward(np.ones_like(out))
    assert any(np.any(p.grad != 0) for p in model.parameters())
    model.zero_grad()
    assert all(np.all(p.grad == 0) for p in model.parameters())


def test_state_dict_roundtrip(rng):
    model = TwoLayer(rng)
    state = model.state_dict()
    other = TwoLayer(np.random.default_rng(999))
    other.load_state_dict(state)
    for (n1, p1), (n2, p2) in zip(
        model.named_parameters(), other.named_parameters()
    ):
        assert n1 == n2
        np.testing.assert_array_equal(p1.data, p2.data)


def test_state_dict_returns_copies(rng):
    model = TwoLayer(rng)
    state = model.state_dict()
    state["fc1.weight"][...] = 0.0
    assert not np.all(model.fc1.weight.data == 0.0)


def test_load_state_dict_missing_key_raises(rng):
    model = TwoLayer(rng)
    state = model.state_dict()
    del state["fc1.weight"]
    with pytest.raises(KeyError):
        model.load_state_dict(state)


def test_load_state_dict_shape_mismatch_raises(rng):
    model = TwoLayer(rng)
    state = model.state_dict()
    state["fc1.weight"] = np.zeros((1, 1))
    with pytest.raises(ValueError):
        model.load_state_dict(state)


def test_buffers_registered_and_saved():
    bn = nn.BatchNorm1d(4)
    state = bn.state_dict()
    assert "running_mean" in state
    assert "running_var" in state


def test_buffer_roundtrip_through_state_dict(rng):
    bn = nn.BatchNorm1d(3)
    bn(rng.normal(size=(10, 3)))  # update running stats
    state = bn.state_dict()
    fresh = nn.BatchNorm1d(3)
    fresh.load_state_dict(state)
    np.testing.assert_allclose(fresh.running_mean, bn.running_mean)
    np.testing.assert_allclose(fresh.running_var, bn.running_var)


def test_set_buffer_unknown_name_raises():
    bn = nn.BatchNorm1d(3)
    with pytest.raises(KeyError):
        bn.set_buffer("nonexistent", np.zeros(3))


def test_modules_iterates_tree(rng):
    model = TwoLayer(rng)
    kinds = [type(m).__name__ for m in model.modules()]
    assert kinds == ["TwoLayer", "Linear", "Linear"]


def test_forward_backward_not_implemented():
    m = nn.Module()
    with pytest.raises(NotImplementedError):
        m.forward(np.zeros(1))
    with pytest.raises(NotImplementedError):
        m.backward(np.zeros(1))
