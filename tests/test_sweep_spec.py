"""Tests for repro.sweep.spec / repro.sweep.validate (fail-fast checks)."""

import json

import pytest

from repro.sweep import (
    SweepSpec,
    SweepValidationError,
    load_spec,
    validate_spec,
)
from repro.sweep.spec import PROFILES, parse_spec_file


def good_spec(**overrides):
    raw = {
        "name": "t",
        "axes": {
            "arch": ["mlp"],
            "p_sa": [0.02, 0.1],
            "variant": ["baseline", "one_shot"],
        },
        "seeds": [0],
    }
    raw.update(overrides)
    return raw


def errors_of(raw, strict=False):
    return [p for p in validate_spec(raw, strict=strict)
            if p.severity == "error"]


def test_load_spec_from_dict():
    spec = load_spec(good_spec())
    assert isinstance(spec, SweepSpec)
    assert spec.axis("p_sa") == (0.02, 0.1)
    # omitted optional axes fall back to single-value defaults
    assert spec.axis("p_sa_train") == (None,)
    assert spec.axis("sparsity") == (0.0,)
    assert spec.axis("quant_bits") == (0,)


def test_load_spec_passes_through_spec_instance():
    spec = load_spec(good_spec())
    assert load_spec(spec) is spec


def test_unknown_top_level_key_warns_then_errors_under_strict():
    raw = good_spec(extra_knob=1)
    assert not errors_of(raw)
    assert any("extra_knob" in w for w in load_spec(raw).warnings)
    assert errors_of(raw, strict=True)
    with pytest.raises(SweepValidationError):
        load_spec(raw, strict=True)


def test_unknown_axis_warns_then_errors_under_strict():
    raw = good_spec()
    raw["axes"]["p_saa"] = [0.1]
    assert not errors_of(raw)
    assert errors_of(raw, strict=True)


def test_missing_required_axis_is_error():
    raw = good_spec()
    del raw["axes"]["variant"]
    assert any("axes.variant" in str(p) for p in errors_of(raw))


def test_out_of_range_fault_rate_is_error():
    for bad in (0.0, -0.1, 0.7, "x"):
        raw = good_spec()
        raw["axes"]["p_sa"] = [bad]
        assert errors_of(raw), bad


def test_unknown_arch_is_error():
    raw = good_spec()
    raw["axes"]["arch"] = ["transformer9000"]
    assert any("transformer9000" in str(p) for p in errors_of(raw))


def test_unknown_variant_is_error():
    raw = good_spec()
    raw["axes"]["variant"] = ["two_shot"]
    assert errors_of(raw)


def test_duplicate_axis_value_is_error():
    raw = good_spec()
    raw["axes"]["p_sa"] = [0.1, 0.1]
    assert any("duplicate" in str(p) for p in errors_of(raw))


def test_bad_seeds_are_errors():
    for bad in ([], [-1], [0, 0], ["a"], [True]):
        assert errors_of(good_spec(seeds=bad)), bad


def test_sparsity_and_quant_bits_ranges():
    raw = good_spec()
    raw["axes"]["sparsity"] = [0.99]
    assert errors_of(raw)
    raw = good_spec()
    raw["axes"]["quant_bits"] = [1]
    assert errors_of(raw)
    raw = good_spec()
    raw["axes"]["sparsity"] = [0.0, 0.5]
    raw["axes"]["quant_bits"] = [0, 8]
    assert not errors_of(raw)


def test_p_sa_train_incompatible_with_baseline_only():
    raw = good_spec()
    raw["axes"]["variant"] = ["baseline"]
    raw["axes"]["p_sa_train"] = [0.05]
    assert any("incompatible" in str(p) for p in errors_of(raw))
    # fine once a trained variant joins the grid
    raw["axes"]["variant"] = ["baseline", "one_shot"]
    assert not errors_of(raw)


def test_grid_above_max_cells_is_error():
    raw = good_spec(max_cells=3)
    assert any("max_cells" in str(p) for p in errors_of(raw))


def test_profile_override_checks():
    # unknown profile
    assert errors_of(good_spec(profiles={"nightly": {}}))
    # cell-controlled field
    assert errors_of(good_spec(profiles={"smoke": {"model": "mlp"}}))
    assert errors_of(good_spec(profiles={"smoke": {"seed": 3}}))
    # unknown scale field
    assert errors_of(good_spec(profiles={"smoke": {"epochs": 3}}))
    # type mismatch
    assert errors_of(good_spec(profiles={"smoke": {"train_size": "big"}}))
    # a valid override passes and lands in the resolved scale
    spec = load_spec(good_spec(profiles={"smoke": {"train_size": 64}}))
    assert spec.scale_for("smoke", "mlp", 0).train_size == 64


def test_scale_for_pins_cell_controlled_fields():
    spec = load_spec(good_spec())
    for profile in PROFILES:
        scale = spec.scale_for(profile, "mlp", 7)
        assert scale.model == "mlp"
        assert scale.seed == 7
        assert scale.workers == 0
        assert scale.forensics is False


def test_json_file_round_trip(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(good_spec()))
    assert load_spec(str(path)).name == "t"


def test_yaml_file_gated_on_pyyaml(tmp_path):
    yaml = pytest.importorskip("yaml")
    path = tmp_path / "spec.yaml"
    path.write_text(yaml.safe_dump(good_spec()))
    assert parse_spec_file(str(path))["name"] == "t"
    assert load_spec(str(path)).name == "t"


def test_non_mapping_spec_rejected(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text("[1, 2]")
    with pytest.raises(ValueError):
        load_spec(str(path))
