"""Tests for PTQ, QAT and the quantise-then-fault model."""

import numpy as np
import pytest

from repro import nn
from repro.core import Trainer, evaluate_accuracy, evaluate_defect_accuracy
from repro.datasets import ArrayDataset, DataLoader
from repro.models import MLP
from repro.quantization import (
    QuantizationAwareTrainer,
    QuantizedFaultModel,
    quantize_model_weights,
)
from repro.reram.deploy import crossbar_parameters


def make_loader(rng, n=90):
    centers = rng.normal(size=(3, 8)) * 3
    labels = rng.integers(0, 3, size=n)
    images = centers[labels] + rng.normal(size=(n, 8)) * 0.3
    return DataLoader(
        ArrayDataset(images.reshape(n, 1, 2, 4), labels), 30,
        shuffle=True, seed=0,
    )


def test_ptq_snaps_all_crossbar_weights(rng):
    model = MLP(8, [16], 3, rng=rng)
    quantize_model_weights(model, levels=5)
    for _, param in crossbar_parameters(model):
        w_max = np.max(np.abs(param.data))
        if w_max == 0:
            continue
        grid = np.linspace(0, w_max, 5)
        for value in np.abs(param.data).reshape(-1):
            assert np.min(np.abs(grid - value)) < 1e-9


def test_ptq_mild_at_high_resolution(rng):
    loader = make_loader(rng)
    model = MLP(8, [16], 3, rng=rng)
    opt = nn.SGD(model.parameters(), lr=0.1, momentum=0.9)
    Trainer(model, opt).fit(loader, 8)
    acc_fp = evaluate_accuracy(model, loader)
    quantize_model_weights(model, levels=256)
    acc_q = evaluate_accuracy(model, loader)
    assert acc_q > acc_fp - 2.0


def test_qat_trains_and_restores_full_precision(rng):
    loader = make_loader(rng)
    model = MLP(8, [16], 3, rng=rng)
    opt = nn.SGD(model.parameters(), lr=0.05, momentum=0.9)
    trainer = QuantizationAwareTrainer(model, opt, levels=8, rng=rng)
    history = trainer.fit(loader, 6)
    assert history.num_epochs == 6
    # After training, weights are full precision (quantisation is only
    # simulated per step), i.e. generally NOT on the 8-level grid.
    _, param = crossbar_parameters(model)[0]
    w_max = np.max(np.abs(param.data))
    grid = np.linspace(0, w_max, 8)
    off_grid = sum(
        np.min(np.abs(grid - v)) > 1e-9
        for v in np.abs(param.data).reshape(-1)
    )
    assert off_grid > 0


def test_qat_model_survives_quantised_deployment(rng):
    """QAT-trained weights lose less accuracy under coarse PTQ."""
    import copy

    loader = make_loader(rng, n=120)
    base = MLP(8, [24], 3, rng=np.random.default_rng(3))
    opt = nn.SGD(base.parameters(), lr=0.1, momentum=0.9)
    Trainer(base, opt).fit(loader, 8)

    qat = copy.deepcopy(base)
    qat_opt = nn.SGD(qat.parameters(), lr=0.05, momentum=0.9)
    QuantizationAwareTrainer(
        qat, qat_opt, levels=3, rng=np.random.default_rng(4)
    ).fit(loader, 6)

    base_q = copy.deepcopy(base)
    quantize_model_weights(base_q, levels=3)
    qat_q = copy.deepcopy(qat)
    quantize_model_weights(qat_q, levels=3)
    assert evaluate_accuracy(qat_q, loader) >= evaluate_accuracy(
        base_q, loader
    ) - 5.0


def test_qat_validation(rng):
    model = MLP(4, [], 2, rng=rng)
    opt = nn.SGD(model.parameters(), lr=0.1)
    with pytest.raises(ValueError):
        QuantizationAwareTrainer(model, opt, levels=1, rng=rng)


def test_quantized_fault_model_zero_rate_is_pure_quantisation(rng):
    w = rng.normal(size=(20, 20))
    model = QuantizedFaultModel(levels=4)
    out = model.apply(w, 0.0, rng)
    from repro.reram import quantize_symmetric

    expected = quantize_symmetric(w, 4, float(np.max(np.abs(w))))
    np.testing.assert_allclose(out, expected)


def test_quantized_fault_model_sa1_pins_to_quantised_max(rng):
    w = rng.normal(size=(60, 60))
    model = QuantizedFaultModel(levels=8, ratio=(0.0, 1.0))
    out = model.apply(w, 0.3, rng)
    w_max = np.max(np.abs(model.quantizer(w)))
    quantised = model.quantizer(w)
    changed = out != quantised
    assert np.any(changed)
    np.testing.assert_allclose(np.abs(out[changed]), w_max)


def test_quantized_fault_model_in_defect_evaluation(rng):
    loader = make_loader(rng)
    model = MLP(8, [16], 3, rng=rng)
    opt = nn.SGD(model.parameters(), lr=0.1, momentum=0.9)
    Trainer(model, opt).fit(loader, 6)
    result = evaluate_defect_accuracy(
        model, loader, 0.1, num_runs=3, rng=rng,
        fault_model=QuantizedFaultModel(levels=16),
    )
    assert 0.0 <= result.mean_accuracy <= 100.0


def test_quantized_fault_model_validation():
    with pytest.raises(ValueError):
        QuantizedFaultModel(levels=1)
