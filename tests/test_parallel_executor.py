"""Tests for the `repro.parallel` executor: ordering, fallback, retry.

Task functions live at module level because pool workers import them by
qualified name.  Worker-count/chunk-size determinism of the *numeric*
pipeline is covered in test_parallel_determinism.py; here the executor's
own mechanics are exercised with cheap synthetic tasks.
"""

import os
import pickle
import time

import numpy as np
import pytest

from repro.models import MLP
from repro.parallel import (
    Broadcast,
    ModelBroadcast,
    ParallelExecutionError,
    ParallelMap,
    WORKERS_ENV,
    default_chunk_size,
    resolve_workers,
)


# -- module-level task functions (workers import these by name) --------------


def _double(task, context):
    return task * 2 + context.get("offset", 0)


def _crash(task, context):
    raise ValueError(f"task {task} always fails")


def _crash_odd(task, context):
    if task % 2 == 1:
        raise ValueError(f"odd task {task}")
    return task


def _flaky(task, context):
    """Fails once per task (tracked by a flag file), then succeeds."""
    flag = os.path.join(context["dir"], f"seen-{task}")
    if not os.path.exists(flag):
        with open(flag, "w"):
            pass
        raise RuntimeError(f"first attempt at task {task}")
    return task * 10


def _hang(task, context):
    time.sleep(60)
    return task


# -- worker-count and chunking policy ----------------------------------------


def test_resolve_workers_explicit_wins(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV, "7")
    assert resolve_workers(3) == 3
    assert resolve_workers(0) == 0


def test_resolve_workers_env(monkeypatch):
    monkeypatch.delenv(WORKERS_ENV, raising=False)
    assert resolve_workers() == 0
    monkeypatch.setenv(WORKERS_ENV, "4")
    assert resolve_workers() == 4
    monkeypatch.setenv(WORKERS_ENV, "auto")
    assert resolve_workers() == (os.cpu_count() or 1)


def test_resolve_workers_garbage_env_falls_back(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV, "many")
    assert resolve_workers() == 0
    monkeypatch.setenv(WORKERS_ENV, "-2")
    assert resolve_workers() == 0


def test_resolve_workers_negative_argument_raises():
    with pytest.raises(ValueError):
        resolve_workers(-1)


def test_default_chunk_size_targets_four_chunks_per_worker():
    assert default_chunk_size(100, 2) == 13
    assert default_chunk_size(3, 8) == 1
    assert default_chunk_size(0, 4) == 1


def test_parallel_map_rejects_bad_knobs():
    with pytest.raises(ValueError):
        ParallelMap(2, retries=-1)
    with pytest.raises(ValueError):
        ParallelMap(2, timeout=0)
    with pytest.raises(ValueError):
        ParallelMap(2, chunk_size=0)


# -- mapping semantics --------------------------------------------------------


def test_serial_map_preserves_order():
    result = ParallelMap(0).map(_double, [3, 1, 2])
    assert result == [6, 2, 4]


def test_empty_tasks_return_empty_list():
    assert ParallelMap(2).map(_double, []) == []


def test_pool_matches_serial_and_preserves_order():
    tasks = list(range(11))
    serial = ParallelMap(0).map(_double, tasks)
    pooled = ParallelMap(2).map(_double, tasks)
    assert pooled == serial == [t * 2 for t in tasks]


@pytest.mark.parametrize("chunk_size", [1, 3, 7, 100])
def test_chunk_size_does_not_change_results(chunk_size):
    tasks = list(range(9))
    result = ParallelMap(2, chunk_size=chunk_size).map(_double, tasks)
    assert result == [t * 2 for t in tasks]


def test_broadcast_context_reaches_workers():
    tasks = [1, 2, 3]
    pooled = ParallelMap(2).map(_double, tasks, Broadcast(offset=100))
    serial = ParallelMap(0).map(_double, tasks, Broadcast(offset=100))
    assert pooled == serial == [102, 104, 106]


# -- graceful degradation -----------------------------------------------------


def test_bogus_start_method_falls_back_to_serial():
    # Pool creation fails, the map still completes in-process.
    pmap = ParallelMap(2, start_method="no-such-method")
    assert pmap.map(_double, [1, 2]) == [2, 4]


# -- retry / failure reporting ------------------------------------------------


def test_crashing_task_raises_after_retries():
    pmap = ParallelMap(2, retries=1, chunk_size=1)
    with pytest.raises(ParallelExecutionError) as excinfo:
        pmap.map(_crash_odd, [0, 1, 2, 3])
    error = excinfo.value
    assert sorted(f.index for f in error.failures) == [1, 3]
    assert error.completed == 2
    assert all(f.attempts == 2 for f in error.failures)
    assert "ValueError" in error.failures[0].reason


def test_flaky_tasks_recover_on_retry(tmp_path):
    pmap = ParallelMap(2, retries=2, chunk_size=1)
    result = pmap.map(_flaky, [1, 2, 3], Broadcast(dir=str(tmp_path)))
    assert result == [10, 20, 30]


def test_all_failures_never_return_partial_results():
    pmap = ParallelMap(2, retries=0, chunk_size=2)
    with pytest.raises(ParallelExecutionError) as excinfo:
        pmap.map(_crash, [1, 2, 3])
    assert excinfo.value.completed == 0
    assert len(excinfo.value.failures) == 3


def test_hung_worker_times_out_and_reports():
    pmap = ParallelMap(2, retries=0, chunk_size=2, timeout=0.5)
    started = time.monotonic()
    with pytest.raises(ParallelExecutionError) as excinfo:
        pmap.map(_hang, [1, 2])
    assert time.monotonic() - started < 30
    assert "timed out" in str(excinfo.value)


# -- broadcast wire format ----------------------------------------------------


def test_model_broadcast_parent_side_is_the_live_model():
    model = MLP(8, [4], 3, rng=np.random.default_rng(0))
    assert ModelBroadcast(model).materialize() is model


def test_model_broadcast_pickle_roundtrip():
    model = MLP(8, [4], 3, batch_norm=True, rng=np.random.default_rng(0))
    rebuilt = pickle.loads(pickle.dumps(ModelBroadcast(model))).materialize()
    assert rebuilt is not model
    original_state = model.state_dict()
    rebuilt_state = rebuilt.state_dict()
    assert set(rebuilt_state) == set(original_state)
    for name, value in original_state.items():
        np.testing.assert_array_equal(rebuilt_state[name], value)
    # The rebuilt model is usable, not just state-identical.
    x = np.random.default_rng(1).normal(size=(2, 8))
    np.testing.assert_allclose(rebuilt(x), model(x))


def test_broadcast_bundle_pickles_once_per_worker():
    bundle = Broadcast(offset=5, tag="x")
    clone = pickle.loads(pickle.dumps(bundle))
    assert clone.materialize() == {"offset": 5, "tag": "x"}
