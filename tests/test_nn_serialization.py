"""Tests for model checkpointing."""

import numpy as np
import pytest

from repro import nn
from repro.models import MLP, SimpleCNN
from repro.nn import load_checkpoint, save_checkpoint


def test_roundtrip_preserves_weights(tmp_path, rng):
    model = MLP(8, [6], 3, rng=rng)
    path = str(tmp_path / "model.npz")
    save_checkpoint(path, model)
    other = MLP(8, [6], 3, rng=np.random.default_rng(99))
    load_checkpoint(path, other)
    x = rng.normal(size=(4, 8))
    model.eval()
    other.eval()
    np.testing.assert_allclose(model(x), other(x), atol=1e-12)


def test_roundtrip_preserves_buffers(tmp_path, rng):
    model = SimpleCNN(in_channels=1, num_classes=2, image_size=8, rng=rng)
    model(rng.normal(size=(8, 1, 8, 8)))  # populate BN running stats
    path = str(tmp_path / "cnn")
    save_checkpoint(path, model)
    other = SimpleCNN(in_channels=1, num_classes=2, image_size=8,
                      rng=np.random.default_rng(1))
    load_checkpoint(str(tmp_path / "cnn.npz"), other)
    for (n1, b1), (n2, b2) in zip(
        model.named_buffers(), other.named_buffers()
    ):
        assert n1 == n2
        np.testing.assert_allclose(b1, b2)


def test_metadata_roundtrip(tmp_path, rng):
    model = MLP(4, [], 2, rng=rng)
    path = str(tmp_path / "m.npz")
    save_checkpoint(path, model, metadata={"p_sa_target": 0.05, "note": "ft"})
    meta = load_checkpoint(path, MLP(4, [], 2, rng=rng))
    assert meta == {"p_sa_target": 0.05, "note": "ft"}


def test_no_metadata_returns_empty_dict(tmp_path, rng):
    model = MLP(4, [], 2, rng=rng)
    path = str(tmp_path / "m.npz")
    save_checkpoint(path, model)
    assert load_checkpoint(path, MLP(4, [], 2, rng=rng)) == {}


def test_architecture_mismatch_raises(tmp_path, rng):
    model = MLP(4, [], 2, rng=rng)
    path = str(tmp_path / "m.npz")
    save_checkpoint(path, model)
    with pytest.raises((KeyError, ValueError)):
        load_checkpoint(path, MLP(4, [8], 2, rng=rng))


def test_creates_parent_directories(tmp_path, rng):
    model = MLP(4, [], 2, rng=rng)
    path = str(tmp_path / "deep" / "nested" / "m.npz")
    save_checkpoint(path, model)
    load_checkpoint(path, MLP(4, [], 2, rng=rng))
