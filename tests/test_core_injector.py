"""Tests for apply_fault and FaultInjector."""

import numpy as np
import pytest

from repro import apply_fault
from repro.core import FaultInjector
from repro.models import MLP
from repro.reram import WeightSpaceFaultModel


def test_apply_fault_zero_rate_identity(rng):
    w = rng.normal(size=(5, 5))
    np.testing.assert_array_equal(apply_fault(w, 0.0, rng), w)


def test_apply_fault_changes_weights(rng):
    w = rng.normal(size=(100, 100))
    out = apply_fault(w, 0.1, rng)
    assert np.mean(out != w) > 0.05


def test_apply_fault_custom_model(rng):
    model = WeightSpaceFaultModel(ratio=(1.0, 0.0))
    w = rng.normal(size=(50, 50)) + 5.0
    out = apply_fault(w, 0.2, rng, fault_model=model)
    assert np.all((out == 0.0) | (out == w))


def make_model(rng):
    return MLP(8, [6], 3, rng=rng)


def test_injector_targets_weights_only(rng):
    injector = FaultInjector(make_model(rng), rng=rng)
    assert injector.target_names == ("net.layer1.weight", "net.layer3.weight")


def test_injector_inject_and_restore_roundtrip(rng):
    model = make_model(rng)
    pristine = {n: p.data.copy() for n, p in model.named_parameters()}
    injector = FaultInjector(model, rng=rng)
    injector.inject(0.5)
    changed = any(
        not np.array_equal(p.data, pristine[n])
        for n, p in model.named_parameters()
    )
    assert changed
    injector.restore()
    for n, p in model.named_parameters():
        np.testing.assert_array_equal(p.data, pristine[n])


def test_injector_context_manager_restores_on_exception(rng):
    model = make_model(rng)
    pristine = model.net.layer1.weight.data.copy()
    injector = FaultInjector(model, rng=rng)
    with pytest.raises(RuntimeError):
        with injector.faults(0.5):
            raise RuntimeError("boom")
    np.testing.assert_array_equal(model.net.layer1.weight.data, pristine)


def test_injector_double_inject_raises(rng):
    injector = FaultInjector(make_model(rng), rng=rng)
    injector.inject(0.1)
    with pytest.raises(RuntimeError):
        injector.inject(0.1)
    injector.restore()


def test_injector_restore_without_inject_raises(rng):
    injector = FaultInjector(make_model(rng), rng=rng)
    with pytest.raises(RuntimeError):
        injector.restore()


def test_injector_preserves_gradients_across_restore(rng):
    """Gradients computed under faults must survive the restore."""
    model = make_model(rng)
    injector = FaultInjector(model, rng=rng)
    x = rng.normal(size=(4, 8))
    with injector.faults(0.2):
        out = model(x)
        model.backward(np.ones_like(out))
        grads_inside = [p.grad.copy() for p in model.parameters()]
    grads_after = [p.grad for p in model.parameters()]
    for a, b in zip(grads_inside, grads_after):
        np.testing.assert_array_equal(a, b)


def test_injector_different_draws_each_time(rng):
    model = make_model(rng)
    injector = FaultInjector(model, rng=rng)
    with injector.faults(0.3):
        first = model.net.layer1.weight.data.copy()
    with injector.faults(0.3):
        second = model.net.layer1.weight.data.copy()
    assert not np.array_equal(first, second)


def test_injector_requires_crossbar_weights(rng):
    from repro import nn

    class NoWeights(nn.Module):
        def forward(self, x):
            return x

    with pytest.raises(ValueError):
        FaultInjector(NoWeights(), rng=rng)
