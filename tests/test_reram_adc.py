"""Tests for the ADC / bit-serial MVM peripheral models."""

import numpy as np
import pytest

from repro.reram import (
    ADCModel,
    BitSerialMVM,
    CrossbarMapper,
    ReRAMDeviceModel,
)

FINE = ReRAMDeviceModel(g_off=1e-6, g_on=1e-4, levels=4096)


def mapped_matrix(rng, rows=12, cols=8):
    mapper = CrossbarMapper(device=FINE, tile_size=16)
    w = rng.normal(size=(rows, cols))
    return w, mapper.map_matrix(w)


# -- ADCModel ------------------------------------------------------------------


def test_adc_identity_on_grid_points():
    adc = ADCModel(bits=3, full_scale=1.0)
    grid = np.arange(-1.0, 1.0 + 1e-9, adc.step)
    np.testing.assert_allclose(adc.convert(grid), grid, atol=1e-12)


def test_adc_saturates():
    adc = ADCModel(bits=4, full_scale=2.0)
    out = adc.convert(np.array([-100.0, 100.0]))
    np.testing.assert_allclose(out, [-2.0, 2.0])


def test_adc_error_bounded_by_half_step(rng):
    adc = ADCModel(bits=6, full_scale=1.0)
    x = rng.uniform(-1, 1, size=500)
    err = np.abs(adc.convert(x) - x)
    assert err.max() <= adc.step / 2 + 1e-12


def test_adc_levels_count():
    assert ADCModel(bits=8, full_scale=1.0).levels == 256


def test_adc_validation():
    with pytest.raises(ValueError):
        ADCModel(bits=0, full_scale=1.0)
    with pytest.raises(ValueError):
        ADCModel(bits=4, full_scale=0.0)


# -- BitSerialMVM --------------------------------------------------------------


def test_bit_serial_exact_with_ideal_adc(rng):
    """With an ideal ADC, bit-serial recombination reproduces the direct
    product of the *input-quantised* vector with the mapped matrix."""
    w, mapped = mapped_matrix(rng)
    mvm = BitSerialMVM(mapped, input_bits=6, adc=None)
    x = rng.normal(size=12)
    # Reference: quantise the input the same way, use the effective matrix.
    codes, scale, offset = mvm._quantise_input(x[None, :])
    x_q = (codes * scale + offset)[0]
    expected = x_q @ mapped.read_back()
    np.testing.assert_allclose(mvm.matvec(x), expected, rtol=1e-9, atol=1e-9)


def test_bit_serial_high_resolution_matches_dense(rng):
    w, mapped = mapped_matrix(rng)
    mvm = BitSerialMVM(mapped, input_bits=10, adc=None)
    x = rng.normal(size=12)
    np.testing.assert_allclose(mvm.matvec(x), x @ w, rtol=0.02, atol=0.05)


def test_bit_serial_batched(rng):
    w, mapped = mapped_matrix(rng)
    mvm = BitSerialMVM(mapped, input_bits=6, adc=None)
    x = rng.normal(size=(4, 12))
    out = mvm.matvec(x)
    assert out.shape == (4, 8)
    np.testing.assert_allclose(out[2], mvm.matvec(x[2]), atol=1e-6)


def test_bit_serial_constant_input(rng):
    w, mapped = mapped_matrix(rng)
    mvm = BitSerialMVM(mapped, input_bits=4, adc=None)
    x = np.full(12, 3.5)
    np.testing.assert_allclose(mvm.matvec(x), x @ w, rtol=0.02, atol=0.05)


def test_coarse_adc_degrades_gracefully(rng):
    w, mapped = mapped_matrix(rng)
    x = rng.normal(size=12)
    exact = x @ w
    full_scale = float(np.abs(exact).max()) * 2 + 1e-6
    fine = BitSerialMVM(mapped, input_bits=8,
                        adc=ADCModel(bits=12, full_scale=full_scale))
    coarse = BitSerialMVM(mapped, input_bits=8,
                          adc=ADCModel(bits=3, full_scale=full_scale))
    err_fine = np.abs(fine.matvec(x) - exact).max()
    err_coarse = np.abs(coarse.matvec(x) - exact).max()
    assert err_fine <= err_coarse + 1e-9


def test_bit_serial_validation(rng):
    w, mapped = mapped_matrix(rng)
    with pytest.raises(ValueError):
        BitSerialMVM(mapped, input_bits=0)
