"""Tests for experiment configs, table rendering and IO."""

import numpy as np
import pytest

from repro.core import AccuracyReport
from repro.experiments import (
    SCALES,
    ExperimentScale,
    get_scale,
    load_reports,
    render_series,
    render_table1,
    render_table2_rows,
    save_reports,
    save_text,
)


def test_scale_presets_exist():
    for name in ("ci", "bench", "paper"):
        assert name in SCALES
        assert get_scale(name).name == name


def test_get_scale_unknown_raises():
    with pytest.raises(KeyError):
        get_scale("galactic")


def test_with_overrides():
    scale = get_scale("ci").with_overrides(defect_runs=99)
    assert scale.defect_runs == 99
    assert get_scale("ci").defect_runs != 99  # original untouched


def test_paper_scale_matches_paper_setup():
    paper = get_scale("paper")
    assert paper.model == "resnet20"
    assert paper.pretrain_epochs == 160
    assert paper.defect_runs == 100
    assert paper.lr == 0.1
    assert 0.001 in paper.test_rates
    assert 0.2 in paper.test_rates
    assert paper.train_rates == (0.005, 0.01, 0.02, 0.05, 0.1, 0.15, 0.2)


def make_reports():
    rates = (0.0, 0.01, 0.02)
    reports = []
    for name, base in (("Baseline", 50.0), ("One-Shot", 70.0)):
        report = AccuracyReport(
            method=name, acc_pretrain=90.0, acc_retrain=89.0
        )
        for rate in rates:
            report.add_defect(rate, base - rate * 100)
        reports.append(report)
    return reports, rates


def test_render_table1_contains_methods_and_stars():
    reports, rates = make_reports()
    text = render_table1("Table I", reports, rates, highlight_top=1)
    assert "Baseline" in text
    assert "One-Shot" in text
    assert "*" in text
    # Top-1 at rate 0.01 is the One-Shot row (69.00).
    one_shot_line = [l for l in text.splitlines() if l.startswith("One-Shot")][0]
    assert "69.00*" in one_shot_line


def test_render_table2():
    rows = [
        {
            "method": "m",
            "acc_pretrain": 75.0,
            "acc_retrain": 74.0,
            "acc_defect_1": 70.0,
            "acc_defect_2": 65.0,
            "ss_1": 14.8,
            "ss_2": 7.4,
            "rate_1": 0.01,
            "rate_2": 0.02,
        }
    ]
    text = render_table2_rows("Table II", rows)
    assert "SS(0.01)" in text
    assert "14.80" in text


def test_render_table2_empty_raises():
    with pytest.raises(ValueError):
        render_table2_rows("Table II", [])


def test_render_series():
    curves = {"Dense": {0.0: 90.0, 0.1: 40.0}, "Pruned": {0.0: 88.0, 0.1: 20.0}}
    text = render_series("Figure 2", curves, (0.0, 0.1))
    assert "Dense" in text
    assert "20.00" in text


def test_save_load_reports_roundtrip(tmp_path):
    reports, _ = make_reports()
    path = str(tmp_path / "out" / "reports.json")
    save_reports(path, reports)
    loaded = load_reports(path)
    assert len(loaded) == 2
    assert loaded[0].method == "Baseline"
    assert loaded[0].defect == reports[0].defect


def test_save_text(tmp_path):
    path = str(tmp_path / "tables" / "t1.txt")
    save_text(path, "hello")
    with open(path) as handle:
        assert handle.read() == "hello\n"


def test_scale_is_frozen():
    scale = get_scale("ci")
    with pytest.raises(Exception):
        scale.defect_runs = 1
