"""Tests for the `python -m repro.lint` CLI: exit codes, formats,
baseline round-trip."""

import json
import os
import textwrap

import pytest

from repro.lint import Baseline, BaselineError
from repro.lint.cli import build_parser, main as lint_main

CLEAN = textwrap.dedent(
    """
    import numpy as np

    __all__ = ["sample"]


    def sample(rng):
        return rng.random()
    """
).lstrip()

VIOLATION = textwrap.dedent(
    """
    import numpy as np

    __all__ = ["sample"]


    def sample():
        rng = np.random.default_rng()
        return rng.random()
    """
).lstrip()


@pytest.fixture()
def tree(tmp_path, monkeypatch):
    """A tmp project dir the CLI runs against, as cwd (like CI does)."""
    (tmp_path / "src").mkdir()
    monkeypatch.chdir(tmp_path)
    return tmp_path


def write(tree, relpath, text):
    path = tree / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)


# -- parser -----------------------------------------------------------------


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_format():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--format", "xml"])


# -- run --------------------------------------------------------------------


def test_run_clean_tree_exits_zero(tree, capsys):
    write(tree, "src/mod.py", CLEAN)
    assert lint_main(["run"]) == 0
    assert "no findings" in capsys.readouterr().out


def test_run_violation_exits_one(tree, capsys):
    write(tree, "src/mod.py", VIOLATION)
    assert lint_main(["run"]) == 1
    out = capsys.readouterr().out
    assert "RL001" in out and "src/mod.py" in out


def test_run_missing_path_exits_two(tree, capsys):
    assert lint_main(["run", "no/such/dir"]) == 2


def test_run_json_document_schema(tree, capsys):
    write(tree, "src/mod.py", VIOLATION)
    assert lint_main(["run", "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == 1
    assert doc["tool"] == "repro.lint"
    assert doc["summary"]["new"] == len(doc["findings"]) == 1
    finding = doc["findings"][0]
    assert finding["rule"] == "RL001"
    assert finding["severity"] == "error"
    assert finding["path"] == "src/mod.py"
    assert finding["fingerprint"]
    assert finding["line"] > 0


def test_run_select_and_ignore(tree, capsys):
    write(tree, "src/mod.py", VIOLATION)
    assert lint_main(["run", "--select", "RL005"]) == 0
    assert lint_main(["run", "--ignore", "RL001"]) == 0
    assert lint_main(["run", "--select", "RL001"]) == 1


def test_run_reports_syntax_error_as_rl000(tree, capsys):
    write(tree, "src/bad.py", "def broken(:\n")
    assert lint_main(["run"]) == 1
    assert "RL000" in capsys.readouterr().out


# -- baseline round-trip ----------------------------------------------------


def test_baseline_roundtrip_hides_known_findings(tree, capsys):
    write(tree, "src/mod.py", VIOLATION)
    assert lint_main(["run"]) == 1
    capsys.readouterr()

    assert lint_main(["baseline"]) == 0
    assert os.path.exists("LINT_BASELINE.json")

    # The same tree is now clean; a fresh violation still gates.
    assert lint_main(["run"]) == 0
    assert "baselined" in capsys.readouterr().out
    write(
        tree,
        "src/fresh.py",
        "import numpy as np\nrng = np.random.default_rng()\n",
    )
    assert lint_main(["run"]) == 1
    out = capsys.readouterr().out
    assert "src/fresh.py" in out and "src/mod.py" not in out


def test_run_flags_stale_baseline_entries(tree, capsys):
    write(tree, "src/mod.py", VIOLATION)
    assert lint_main(["baseline"]) == 0
    write(tree, "src/mod.py", CLEAN)
    capsys.readouterr()
    assert lint_main(["run"]) == 0
    assert "stale" in capsys.readouterr().out


def test_run_no_baseline_flag_reports_everything(tree, capsys):
    write(tree, "src/mod.py", VIOLATION)
    assert lint_main(["baseline"]) == 0
    assert lint_main(["run"]) == 0
    assert lint_main(["run", "--no-baseline"]) == 1


def test_run_rejects_corrupt_baseline(tree, capsys):
    write(tree, "src/mod.py", CLEAN)
    (tree / "LINT_BASELINE.json").write_text("{not json")
    assert lint_main(["run"]) == 2


def test_baseline_load_validates_schema(tree):
    (tree / "b.json").write_text(json.dumps({"tool": "other", "entries": []}))
    with pytest.raises(BaselineError):
        Baseline.load(str(tree / "b.json"))
    (tree / "c.json").write_text(
        json.dumps({"tool": "repro.lint", "schema": 99, "entries": []})
    )
    with pytest.raises(BaselineError):
        Baseline.load(str(tree / "c.json"))


def test_baseline_matching_is_count_aware(tree, capsys):
    two = VIOLATION + "\n\ndef again():\n    rng = np.random.default_rng()\n    return rng\n"
    write(tree, "src/mod.py", two)
    assert lint_main(["baseline"]) == 0
    baseline = Baseline.load("LINT_BASELINE.json")
    # Drop one of the two identical-fingerprint entries: one violation
    # stays baselined, the other gates again.
    baseline.entries.pop()
    Baseline(baseline.entries).write("LINT_BASELINE.json")
    assert lint_main(["run"]) == 1


# -- rules ------------------------------------------------------------------


ALL_RULE_IDS = [f"RL{i:03d}" for i in range(1, 17)]


def test_rules_lists_all(capsys):
    assert lint_main(["rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ALL_RULE_IDS:
        assert rule_id in out


def test_rules_json(capsys):
    assert lint_main(["rules", "--format", "json"]) == 0
    rules = json.loads(capsys.readouterr().out)
    assert len(rules) == len(ALL_RULE_IDS)
    assert {r["id"] for r in rules} == set(ALL_RULE_IDS)
    for entry in rules:
        assert entry["severity"] in ("error", "warning")
        assert entry["description"]


# -- the repo itself --------------------------------------------------------


def test_repo_tree_is_lint_clean(monkeypatch):
    """The acceptance contract: `repro.lint run` exits 0 on the repo
    with its committed baseline."""
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    # Baseline entries are keyed by repo-relative paths, so run from the
    # repo root exactly as CI does.
    monkeypatch.chdir(repo_root)
    assert lint_main(["run"]) == 0
