"""Tests for retraining-free differential-pair fault compensation."""

import numpy as np
import pytest

from repro.baselines import compensate_mapped_matrix, compensation_residual
from repro.reram import (
    FAULT_SA0,
    FAULT_SA1,
    CrossbarMapper,
    ReRAMDeviceModel,
    StuckAtFaultSpec,
)

FINE = ReRAMDeviceModel(g_off=1e-6, g_on=1e-4, levels=4096)


def make_mapped(rng, rows=10, cols=8):
    mapper = CrossbarMapper(device=FINE, tile_size=16)
    w = rng.normal(size=(rows, cols))
    return w, mapper.map_matrix(w)


def test_no_faults_compensation_is_noop(rng):
    w, mapped = make_mapped(rng)
    before = compensation_residual(mapped, w)
    compensate_mapped_matrix(mapped, w)
    after = compensation_residual(mapped, w)
    assert after <= before + 1e-12


def test_compensation_reduces_fault_error(rng):
    w, mapped = make_mapped(rng, rows=16, cols=16)
    mapped.inject_faults(StuckAtFaultSpec(0.1), rng)
    before = compensation_residual(mapped, w)
    compensate_mapped_matrix(mapped, w)
    after = compensation_residual(mapped, w)
    assert after < before


def test_single_sa1_fault_fully_compensated(rng):
    """A lone stuck-on positive cell is exactly cancellable when the
    target difference stays in the window."""
    mapper = CrossbarMapper(device=FINE, tile_size=4)
    w = np.full((4, 4), 0.3)
    w[0, 0] = 1.0  # dynamic range
    mapped = mapper.map_matrix(w)
    pos, neg = mapped.tile_grid[0][0]
    fmap = np.zeros((4, 4), dtype=np.int8)
    fmap[1, 1] = FAULT_SA1
    pos.set_fault_map(fmap)
    # Before compensation, weight (1,1) is pinned near w_max.
    assert abs(mapped.read_back()[1, 1] - 1.0) < 0.05
    compensate_mapped_matrix(mapped, w)
    # After compensation the negative cell absorbs the excess.
    assert abs(mapped.read_back()[1, 1] - 0.3) < 0.01


def test_sa0_on_positive_cell_of_positive_weight_is_partially_compensable(rng):
    """Stuck-off on the storing cell loses the magnitude: the pair can only
    reach 0 (not the positive target), so the residual equals the target."""
    mapper = CrossbarMapper(device=FINE, tile_size=4)
    w = np.full((4, 4), 0.5)
    mapped = mapper.map_matrix(w)
    pos, neg = mapped.tile_grid[0][0]
    fmap = np.zeros((4, 4), dtype=np.int8)
    fmap[2, 2] = FAULT_SA0
    pos.set_fault_map(fmap)
    compensate_mapped_matrix(mapped, w)
    effective = mapped.read_back()[2, 2]
    # Clamped at the best reachable value: g_neg cannot go below g_off,
    # so the weight stays ~0 (cannot recreate +0.5), never negative.
    assert -0.01 <= effective <= 0.05


def test_double_fault_pair_left_alone(rng):
    mapper = CrossbarMapper(device=FINE, tile_size=4)
    w = np.full((4, 4), 0.5)
    mapped = mapper.map_matrix(w)
    pos, neg = mapped.tile_grid[0][0]
    fmap = np.zeros((4, 4), dtype=np.int8)
    fmap[3, 3] = FAULT_SA1
    pos.set_fault_map(fmap)
    neg.set_fault_map(fmap)
    before = mapped.read_back()[3, 3]
    compensate_mapped_matrix(mapped, w)
    after = mapped.read_back()[3, 3]
    assert after == pytest.approx(before)


def test_shape_mismatch_raises(rng):
    w, mapped = make_mapped(rng)
    with pytest.raises(ValueError):
        compensate_mapped_matrix(mapped, np.zeros((2, 2)))


def test_compensation_improves_average_error_statistics(rng):
    """Across random fault draws, compensation reduces mean |error|."""
    deltas = []
    for seed in range(5):
        local = np.random.default_rng(seed)
        w, mapped = make_mapped(local, rows=12, cols=12)
        mapped.inject_faults(StuckAtFaultSpec(0.15), local)
        err_before = np.mean(np.abs(mapped.read_back() - w))
        compensate_mapped_matrix(mapped, w)
        err_after = np.mean(np.abs(mapped.read_back() - w))
        deltas.append(err_before - err_after)
    assert np.mean(deltas) > 0
