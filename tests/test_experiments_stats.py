"""Tests for the statistical utilities."""

import numpy as np
import pytest

from repro.experiments import (
    mean_confidence_interval,
    paired_comparison,
)


def test_ci_contains_mean():
    mean, low, high = mean_confidence_interval([10.0, 12.0, 11.0, 13.0])
    assert low < mean < high
    assert mean == pytest.approx(11.5)


def test_ci_width_shrinks_with_samples(rng):
    small = rng.normal(50, 5, size=10)
    large = rng.normal(50, 5, size=1000)
    _, lo_s, hi_s = mean_confidence_interval(small)
    _, lo_l, hi_l = mean_confidence_interval(large)
    assert (hi_l - lo_l) < (hi_s - lo_s)


def test_ci_coverage_monte_carlo():
    """A 90% CI should cover the true mean ~90% of the time."""
    rng = np.random.default_rng(0)
    covered = 0
    trials = 300
    for _ in range(trials):
        samples = rng.normal(70.0, 3.0, size=20)
        _, low, high = mean_confidence_interval(samples, confidence=0.9)
        covered += low <= 70.0 <= high
    assert 0.84 <= covered / trials <= 0.96


def test_ci_validation():
    with pytest.raises(ValueError):
        mean_confidence_interval([1.0])
    with pytest.raises(ValueError):
        mean_confidence_interval([1.0, 2.0], confidence=1.5)


def test_paired_detects_consistent_difference(rng):
    base = rng.normal(60, 5, size=30)
    better = base + 2.0 + rng.normal(0, 0.2, size=30)
    result = paired_comparison(better, base)
    assert result.significant
    assert result.winner == "a"
    assert result.ci_low > 0
    assert result.mean_difference == pytest.approx(2.0, abs=0.3)


def test_paired_detects_tie(rng):
    base = rng.normal(60, 5, size=30)
    same = base + rng.normal(0, 0.5, size=30)
    result = paired_comparison(same, base)
    assert result.winner in ("tie", "a", "b")
    # Mean difference near zero regardless of significance call.
    assert abs(result.mean_difference) < 0.5


def test_paired_common_random_numbers_beats_unpaired(rng):
    """Pairing removes shared fault-severity noise: a small real gap is
    significant when paired even though marginal variances are large."""
    shared = rng.normal(0, 10, size=40)  # severity of each fault draw
    a = 70 + shared + 1.0  # model a is 1pp better on every draw
    b = 70 + shared
    paired = paired_comparison(a, b)
    assert paired.significant
    assert paired.winner == "a"


def test_paired_identical_sequences():
    result = paired_comparison([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
    assert result.mean_difference == 0.0
    assert not result.significant
    assert result.winner == "tie"


def test_paired_validation():
    with pytest.raises(ValueError):
        paired_comparison([1.0, 2.0], [1.0])
    with pytest.raises(ValueError):
        paired_comparison([1.0], [2.0])


def test_paired_with_real_defect_evaluations(rng):
    """End to end: common-seed defect evaluations feed the comparison."""
    from repro import nn
    from repro.core import (
        OneShotFaultTolerantTrainer,
        Trainer,
        evaluate_defect_accuracy,
    )
    from repro.datasets import ArrayDataset, DataLoader
    from repro.models import MLP

    n = 120
    centers = rng.normal(size=(3, 8)) * 3
    labels = rng.integers(0, 3, size=n)
    images = centers[labels] + rng.normal(size=(n, 8)) * 0.3
    loader = DataLoader(ArrayDataset(images.reshape(n, 1, 2, 4), labels),
                        30, shuffle=True, seed=0)
    base = MLP(8, [16], 3, rng=np.random.default_rng(1))
    Trainer(base, nn.SGD(base.parameters(), lr=0.1, momentum=0.9)).fit(
        loader, 8
    )
    ft = MLP(8, [16], 3, rng=np.random.default_rng(1))
    OneShotFaultTolerantTrainer(
        ft, nn.SGD(ft.parameters(), lr=0.1, momentum=0.9),
        p_sa_target=0.1, rng=np.random.default_rng(2),
    ).fit(loader, 8)

    rate = 0.1
    a = evaluate_defect_accuracy(
        ft, loader, rate, num_runs=10, rng=np.random.default_rng(7)
    )
    b = evaluate_defect_accuracy(
        base, loader, rate, num_runs=10, rng=np.random.default_rng(7)
    )
    result = paired_comparison(a.run_accuracies, b.run_accuracies)
    # FT should not be significantly *worse*.
    assert result.winner in ("a", "tie")
