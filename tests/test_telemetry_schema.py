"""Runtime side of the event registry: validate_event(s) and helpers.

The registry itself is generated and its freshness is covered by
``tests/test_lint_flow.py``; here we pin the runtime validation
semantics a recorded run is checked against.
"""

import os
import subprocess
import sys

from repro.telemetry.schema import (
    BOOKKEEPING_FIELDS,
    EVENT_SCHEMAS,
    fields_for,
    known_kinds,
    validate_event,
    validate_events,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def closed_kind():
    kind = next(
        k for k in sorted(EVENT_SCHEMAS) if not EVENT_SCHEMAS[k]["extra"]
    )
    return kind, EVENT_SCHEMAS[kind]["fields"]


def open_kind():
    return next(
        k for k in sorted(EVENT_SCHEMAS) if EVENT_SCHEMAS[k]["extra"]
    )


def test_known_kinds_sorted_and_nonempty():
    kinds = known_kinds()
    assert kinds == tuple(sorted(kinds))
    assert "run_start" in kinds and "epoch_end" in kinds


def test_fields_for():
    kind, fields = closed_kind()
    assert fields_for(kind) == tuple(fields)
    assert fields_for("no_such_kind") is None


def test_validate_event_accepts_schema_and_bookkeeping_fields():
    kind, fields = closed_kind()
    event = {name: 0 for name in fields}
    event.update({name: 0 for name in BOOKKEEPING_FIELDS})
    event["kind"] = kind
    assert validate_event(event) == []


def test_validate_event_flags_unknown_kind():
    problems = validate_event({"kind": "no_such_kind"})
    assert problems and "no_such_kind" in problems[0]


def test_validate_event_flags_missing_kind_and_non_mapping():
    assert validate_event({"ts": 0.0}) == [
        "event: missing or non-string 'kind'"
    ]
    assert validate_event(["not", "a", "mapping"]) == [
        "event: not a mapping"
    ]


def test_validate_event_flags_unknown_field_on_closed_kind():
    kind, _ = closed_kind()
    problems = validate_event({"kind": kind, "no_such_field": 1}, index=3)
    assert problems == [
        f"event 3 ({kind}): field 'no_such_field' is not in the schema"
    ]


def test_validate_event_tolerates_open_kind_extras():
    assert validate_event({"kind": open_kind(), "anything": 1}) == []


def test_validate_event_never_requires_fields():
    # Producers emit conditionally; an event with only bookkeeping is fine.
    kind, _ = closed_kind()
    assert validate_event({"kind": kind}) == []


def test_validate_events_orders_and_indexes_problems():
    kind, _ = closed_kind()
    problems = validate_events(
        [{"kind": kind}, {"kind": "bogus"}, {"kind": kind, "zzz": 1}]
    )
    assert len(problems) == 2
    assert problems[0].startswith("event 1")
    assert problems[1].startswith("event 2")


def test_cli_validate_catches_drifted_run(tmp_path):
    run_dir = tmp_path / "run-19700101-000000-test"
    run_dir.mkdir()
    kind, _ = closed_kind()
    (run_dir / "events.jsonl").write_text(
        f'{{"kind": "{kind}", "run_id": "r", "seq": 0, "ts": 0.0}}\n'
        '{"kind": "bogus_kind", "run_id": "r", "seq": 1, "ts": 1.0}\n'
    )
    env = {**os.environ, "PYTHONPATH": os.path.join(REPO_ROOT, "src")}
    proc = subprocess.run(
        [sys.executable, "-m", "repro.telemetry", "validate", str(run_dir)],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 1
    assert "bogus_kind" in proc.stdout
    # Drop the drifted line: the run now conforms and validate exits 0.
    (run_dir / "events.jsonl").write_text(
        f'{{"kind": "{kind}", "run_id": "r", "seq": 0, "ts": 0.0}}\n'
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro.telemetry", "validate", str(run_dir)],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 0
    assert "conform" in proc.stdout
