"""Tests for repro.telemetry.profiling and the DeadlineScheduler.

Covers the scheduling contract (drift-free grid, skip-on-overrun) with
a fake clock, aggregate merge determinism (byte-identical exports for
any partitioning of the samples), the speedscope/flamegraph exports,
the run-bound profiler lifecycle, worker merge through the pool, the
flame CLI's exit codes, and the documented ≤5% overhead budget.
"""

import json
import os
import threading
import time

import numpy as np
import pytest

from repro import telemetry
from repro.core.evaluate import evaluate_defect_accuracy
from repro.datasets import DataLoader, make_synthetic_pair
from repro.models import MLP
from repro.telemetry import (
    DeadlineScheduler,
    MemorySink,
    StackAggregate,
    StackProfiler,
    StackSampler,
    build_speedscope,
    function_totals,
    merge_profile_events,
    render_collapsed,
    render_flamegraph_svg,
    validate_speedscope,
)
from repro.telemetry.cli import main as telemetry_main
from repro.telemetry.profiling import (
    SPAN_FRAME_PREFIX,
    frame_label,
    profile_interval_of,
)


@pytest.fixture(autouse=True)
def _no_leaked_run():
    yield
    telemetry.end_run()


# -- DeadlineScheduler --------------------------------------------------------


class FakeTime:
    """A controllable monotonic clock + waiter pair.

    ``wait(timeout)`` advances the clock by the full timeout (a sleep
    that always runs to completion); tests advance the clock directly to
    simulate loop-body work.
    """

    def __init__(self, start=100.0, stop=None):
        self.now = start
        self.waits = []
        self.stop = stop

    def clock(self):
        return self.now

    def wait(self, timeout):
        self.waits.append(timeout)
        if self.stop is not None and self.stop.is_set():
            return True
        self.now += timeout
        return False


def test_scheduler_rejects_bad_interval():
    with pytest.raises(ValueError):
        DeadlineScheduler(0, threading.Event())


def test_scheduler_ticks_on_absolute_grid_despite_slow_work():
    """The waited durations shrink to absorb loop-body cost — the naive
    ``stop.wait(interval)`` loop would wait the full interval every time
    and drift by the body cost per tick."""
    fake = FakeTime()
    scheduler = DeadlineScheduler(
        1.0, threading.Event(), clock=fake.clock, waiter=fake.wait
    )
    tick_times = []
    for _ in range(4):
        assert scheduler.wait_for_tick()
        tick_times.append(fake.now)
        fake.now += 0.4  # loop body costs 0.4s of the 1.0s period
    # Ticks land exactly on start + k*interval: no accumulated drift.
    assert tick_times == pytest.approx([101.0, 102.0, 103.0, 104.0])
    # Each wait after the first is shortened by the body cost.
    assert fake.waits == pytest.approx([1.0, 0.6, 0.6, 0.6])
    assert scheduler.ticks == 4
    assert scheduler.skipped == 0


def test_scheduler_skips_missed_deadlines_without_bursting():
    fake = FakeTime()
    scheduler = DeadlineScheduler(
        1.0, threading.Event(), clock=fake.clock, waiter=fake.wait
    )
    assert scheduler.wait_for_tick()  # t=101
    fake.now += 3.5  # body overruns 3 whole periods (deadlines 102-104)
    assert scheduler.wait_for_tick()
    # Realigned to the grid (105), not replayed at 102/103/104.
    assert fake.now == pytest.approx(105.0)
    assert scheduler.skipped == 3
    assert scheduler.ticks == 2


def test_scheduler_stops_when_waiter_reports_stop():
    stop = threading.Event()
    stop.set()
    scheduler = DeadlineScheduler(0.01, stop)
    assert not scheduler.wait_for_tick()
    assert scheduler.ticks == 0


def test_monitor_loop_uses_deadline_scheduling():
    """Regression: ResourceMonitor's thread loop must not drift by the
    per-sample cost.  Run the loop synchronously with a fake clock that
    stops after a few ticks and check the sample times sit on the grid."""
    from repro.telemetry import ResourceMonitor

    fake = FakeTime()
    sample_times = []
    sink = MemorySink()
    with telemetry.session(sink=sink) as run:
        monitor = ResourceMonitor(
            run=run, interval=2.0, clock=fake.clock, waiter=fake.wait
        )
        fake.stop = monitor._stop
        original = monitor._record_sample

        def slow_sample():
            sample_times.append(fake.now)
            fake.now += 0.5  # sampling cost: a quarter of the period
            if len(sample_times) >= 3:
                monitor._stop.set()
            original()

        monitor._record_sample = slow_sample
        monitor._stop.clear()
        monitor._loop()  # synchronous: no thread, fully deterministic
    assert sample_times == pytest.approx([102.0, 104.0, 106.0])


# -- frame labels -------------------------------------------------------------


def test_frame_label_shortens_to_repo_relative_path():
    label = frame_label("/home/x/src/repro/nn/layers.py", "forward")
    assert label == "repro/nn/layers.py:forward"


def test_frame_label_collapses_foreign_paths_to_basename():
    assert frame_label("/usr/lib/python3/threading.py", "run") == (
        "threading.py:run"
    )


def test_frame_label_is_separator_safe():
    label = frame_label("/tmp/odd;dir/mod.py", "has space")
    assert ";" not in label
    assert " " not in label


# -- StackAggregate -----------------------------------------------------------


STACKS = [
    (("a", "b"), 3),
    (("a", "b", "c"), 2),
    (("a",), 1),
    (("span:eval", "a", "b"), 4),
    (("d", "d", "d"), 5),  # recursion: d appears thrice in one stack
]


def _filled(pairs):
    aggregate = StackAggregate()
    for stack, count in pairs:
        aggregate.add(stack, count)
    return aggregate


def test_aggregate_counts_and_ignores_empty():
    aggregate = _filled(STACKS)
    assert aggregate.samples == 15
    aggregate.add((), 7)
    aggregate.add(("x",), 0)
    assert aggregate.samples == 15


def test_wire_roundtrip_preserves_multiset():
    aggregate = _filled(STACKS)
    wire = aggregate.to_wire()
    assert list(wire) == sorted(wire)  # sorted on export
    back = StackAggregate.from_wire(wire)
    assert back.counts == aggregate.counts


@pytest.mark.parametrize("parts", [1, 2, 8])
def test_exports_are_byte_identical_for_any_partitioning(parts):
    """Split the sample multiset across `parts` worker aggregates, merge,
    and require every export to match the single-aggregate bytes."""
    whole = _filled(STACKS)
    shards = [StackAggregate() for _ in range(parts)]
    i = 0
    for stack, count in STACKS:
        for _ in range(count):  # one sample at a time, round-robin
            shards[i % parts].add(stack)
            i += 1
    merged = StackAggregate()
    for shard in shards:
        merged.merge(shard)
    assert merged.counts == whole.counts
    assert render_collapsed(merged) == render_collapsed(whole)
    assert json.dumps(build_speedscope(merged)) == json.dumps(
        build_speedscope(whole)
    )
    assert render_flamegraph_svg(merged) == render_flamegraph_svg(whole)


def test_render_collapsed_format():
    aggregate = _filled([(("a", "b"), 3), (("a",), 1)])
    assert render_collapsed(aggregate) == "a 1\na;b 3\n"
    assert render_collapsed(StackAggregate()) == ""


def test_function_totals_self_total_and_recursion():
    totals = function_totals(_filled(STACKS))
    # `a` is on top only for the bare ("a",) stack...
    assert totals["a"]["self"] == 1
    # ...but appears in four stacks: 3 + 2 + 1 + 4 samples.
    assert totals["a"]["total"] == 10
    assert totals["b"]["self"] == 3 + 4
    # Recursive d: counted once per stack, not three times.
    assert totals["d"] == {"self": 5, "total": 5}
    # span: frames are excluded by default, included on request.
    assert "span:eval" not in totals
    with_spans = function_totals(_filled(STACKS), include_spans=True)
    assert with_spans["span:eval"] == {"self": 0, "total": 4}


# -- speedscope ---------------------------------------------------------------


def test_speedscope_document_is_valid_and_deterministic():
    aggregate = _filled(STACKS)
    doc = build_speedscope(aggregate, name="t", interval=0.01)
    assert validate_speedscope(doc) == []
    profile = doc["profiles"][0]
    assert profile["type"] == "sampled"
    assert sum(profile["weights"]) == pytest.approx(15 * 0.01)
    assert profile["endValue"] == pytest.approx(sum(profile["weights"]))
    # Frame indices resolve back to the right labels.
    names = [f["name"] for f in doc["shared"]["frames"]]
    decoded = {
        tuple(names[i] for i in sample): round(w / 0.01)
        for sample, w in zip(profile["samples"], profile["weights"])
    }
    assert decoded == {s: c for s, c in STACKS}


def test_validate_speedscope_reports_problems():
    assert validate_speedscope({}) != []
    doc = build_speedscope(_filled(STACKS))
    doc["profiles"][0]["samples"][0] = [999]
    assert any("out of range" in p for p in validate_speedscope(doc))


# -- flamegraph SVG -----------------------------------------------------------


def test_flamegraph_svg_structure():
    svg = render_flamegraph_svg(_filled(STACKS), title="t", interval=0.01)
    assert svg.startswith("<svg ") and svg.endswith("</svg>")
    assert "15 samples" in svg
    # Span frames are tinted with the dedicated cool color.
    assert "span:eval" in svg and "#5b7d9e" in svg
    assert svg.count("<rect") > 4


def test_flamegraph_svg_handles_empty_aggregate():
    svg = render_flamegraph_svg(StackAggregate())
    assert "(no samples)" in svg
    assert svg.endswith("</svg>")


# -- StackSampler -------------------------------------------------------------


def _busy(deadline):
    total = 0
    while time.perf_counter() < deadline:
        total += sum(range(200))
    return total


def test_sampler_captures_live_stacks():
    sampler = StackSampler(interval=0.002)
    with sampler:
        _busy(time.perf_counter() + 0.3)
    aggregate = sampler.stop()
    assert aggregate.samples > 10
    flat = [f for stack in aggregate.counts for f in stack]
    assert any(f.endswith(":_busy") for f in flat)
    # The sampler never records its own thread's frames.
    assert not any(
        f.endswith(":_loop") or f.endswith(":sample_once") for f in flat
    )


def test_sampler_stop_is_idempotent_and_restartable():
    sampler = StackSampler(interval=0.005)
    sampler.start()
    first = sampler.stop()
    assert first is sampler.stop()
    assert not sampler.running


def test_sample_once_tags_span_path():
    class Spans:
        def current_path(self):
            return ("eval", "chunk")

    sampler = StackSampler(span_tracker=Spans())
    sampler._target_ident = threading.get_ident()
    sampler.sample_once()
    (stack,) = sampler.aggregate.counts
    assert stack[0] == SPAN_FRAME_PREFIX + "eval"
    assert stack[1] == SPAN_FRAME_PREFIX + "chunk"
    assert stack[-1].endswith(":sample_once")


def test_sampler_caps_stack_depth():
    sampler = StackSampler(max_depth=3)
    sampler._target_ident = threading.get_ident()

    def recurse(n):
        if n:
            return recurse(n - 1)
        sampler.sample_once()

    recurse(20)
    (stack,) = sampler.aggregate.counts
    assert len(stack) == 3


def test_sampler_rejects_bad_interval():
    with pytest.raises(ValueError):
        StackSampler(interval=0)
    with pytest.raises(ValueError):
        StackProfiler(interval=-1)


# -- StackProfiler + session(profile=True) ------------------------------------


def test_profiler_emits_one_profile_stacks_event():
    sink = MemorySink()
    with telemetry.session(sink=sink) as run:
        profiler = StackProfiler(run=run, interval=0.002)
        with profiler:
            with run.span("hot"):
                _busy(time.perf_counter() + 0.25)
        snapshot = run.metrics.snapshot()
    events = [e for e in sink.events if e["kind"] == "profile_stacks"]
    assert len(events) == 1
    event = events[0]
    assert event["samples"] == sum(event["stacks"].values())
    assert event["interval"] == pytest.approx(0.002)
    assert snapshot["counters"]["profile/samples_total"] == event["samples"]
    # Samples taken inside the span carry the synthetic span root.
    merged = merge_profile_events(sink.events)
    assert any(
        stack[0] == SPAN_FRAME_PREFIX + "hot" for stack in merged.counts
    )


def test_profiler_is_noop_on_disabled_run():
    profiler = StackProfiler(run=telemetry.NULL_RUN)
    profiler.start()
    assert not profiler.running
    profiler.stop()  # must not raise


def test_session_profile_flag_attaches_profiler():
    sink = MemorySink()
    with telemetry.session(sink=sink, profile=True) as run:
        assert run.profiling
        assert run.profiler is not None and run.profiler.running
        _busy(time.perf_counter() + 0.1)
    kinds = [e["kind"] for e in sink.events]
    assert kinds.count("profile_stacks") == 1
    # The profile event must land inside the run, before run_end.
    assert kinds.index("profile_stacks") < kinds.index("run_end")


def test_session_without_flag_has_no_profiler():
    with telemetry.session(sink=MemorySink()) as run:
        assert not run.profiling
        assert run.profiler is None


def test_profile_interval_of_prefers_recorded_interval():
    events = [{"kind": "profile_stacks", "stacks": {}, "interval": 0.25}]
    assert profile_interval_of(events) == 0.25
    assert profile_interval_of([]) == telemetry.DEFAULT_PROFILE_INTERVAL


# -- worker merge -------------------------------------------------------------


def _smoke_inputs():
    model = MLP(48, [16], 4, rng=np.random.default_rng(7))
    _, test = make_synthetic_pair(
        num_classes=4, image_size=4, train_size=8, test_size=24,
        seed=0, bandwidth=1, channels=3,
    )
    return model, DataLoader(test, 24, shuffle=False)


def test_pool_run_merges_worker_profiles():
    model, loader = _smoke_inputs()
    sink = MemorySink()
    with telemetry.session(sink=sink, profile=True) as run:
        evaluate_defect_accuracy(
            model, loader, 0.05, num_runs=4, seed=11, workers=2
        )
    events = [e for e in sink.events if e["kind"] == "profile_stacks"]
    worker_events = [e for e in events if e.get("worker_pid")]
    # One aggregate per worker chunk plus the parent's at close.
    assert worker_events
    assert len(events) > len(worker_events) >= 1
    # Merged counters account for every sample shipped in the stream.
    snapshot = run.metrics.snapshot()
    assert snapshot["counters"]["profile/samples_total"] == sum(
        e["samples"] for e in events
    )
    merged = merge_profile_events(sink.events)
    assert merged.samples == sum(e["samples"] for e in events)


# -- overhead budget ----------------------------------------------------------


def test_sampling_overhead_within_budget():
    """The documented contract: default-rate sampling costs ≤5%.

    At one sample per interval the steady-state overhead fraction is
    ``cost(sample_once) / interval``, so the budget is checked directly
    against the measured per-sample cost on a realistically deep stack —
    a formulation immune to the wall-clock noise of a shared CI box.
    """
    sampler = StackSampler()  # default 100 Hz interval
    sampler._target_ident = threading.get_ident()

    def deep(n):
        if n:
            return deep(n - 1)
        start = time.perf_counter()
        for _ in range(100):
            sampler.sample_once()
        return (time.perf_counter() - start) / 100

    per_sample = min(deep(40) for _ in range(5))
    assert per_sample <= 0.05 * sampler.interval


def test_sampling_does_not_slow_the_defect_eval_smoke():
    """End-to-end guard: sampling the defect-eval smoke must never cost
    anything near tracing-profiler territory.  The bound is deliberately
    loose (25%) because shared-runner wall-clock noise exceeds the real
    ≤5% budget verified per-sample above; what this catches is a switch
    to per-call hooks (10x+) or a runaway sample rate."""
    model, loader = _smoke_inputs()

    def smoke():
        evaluate_defect_accuracy(
            model, loader, 0.05, num_runs=300, seed=3, workers=0
        )

    smoke()  # warm caches before timing anything
    plain, profiled = [], []
    for _ in range(5):
        start = time.perf_counter()
        smoke()
        plain.append(time.perf_counter() - start)
        sampler = StackSampler()
        with sampler:
            start = time.perf_counter()
            smoke()
            profiled.append(time.perf_counter() - start)
        assert sampler.stop().samples > 0
    assert min(profiled) <= min(plain) * 1.25


# -- flame CLI ----------------------------------------------------------------


def _profiled_run_dir(root):
    with telemetry.session(root, profile=True) as run:
        with run.span("work"):
            _busy(time.perf_counter() + 0.2)
        run_dir = run.directory
    return run_dir


def test_flame_cli_svg_and_collapsed(tmp_path, capsys):
    run_dir = _profiled_run_dir(str(tmp_path))
    assert telemetry_main(["flame", run_dir]) == 0
    svg = capsys.readouterr().out
    assert svg.startswith("<svg ") and "span:work" in svg
    assert telemetry_main(["flame", run_dir, "--format", "collapsed"]) == 0
    collapsed = capsys.readouterr().out
    lines = [l for l in collapsed.strip().splitlines() if l]
    assert lines == sorted(lines)
    assert all(l.rsplit(" ", 1)[1].isdigit() for l in lines)


def test_flame_cli_speedscope_validates(tmp_path, capsys):
    run_dir = _profiled_run_dir(str(tmp_path))
    out = str(tmp_path / "profile.speedscope.json")
    assert telemetry_main(
        ["flame", run_dir, "--format", "speedscope", "-o", out]
    ) == 0
    assert capsys.readouterr().out.strip() == out
    with open(out) as handle:
        assert validate_speedscope(json.load(handle)) == []


def test_flame_cli_exits_2_on_unprofiled_run(tmp_path, capsys):
    with telemetry.session(str(tmp_path)) as run:  # no profile flag
        run_dir = run.directory
    assert telemetry_main(["flame", run_dir]) == 2
    assert "no profile_stacks" in capsys.readouterr().err


def test_flame_cli_exits_2_on_missing_run(tmp_path, capsys):
    assert telemetry_main(["flame", str(tmp_path / "nope")]) == 2


def test_flame_cli_exits_2_on_corrupt_run(tmp_path, capsys):
    run_dir = tmp_path / "run-x"
    run_dir.mkdir()
    (run_dir / "events.jsonl").write_text("{not json\n")
    assert telemetry_main(["flame", str(run_dir)]) == 2
    (run_dir / "events.jsonl").write_text("")  # empty is just as dead
    assert telemetry_main(["flame", str(run_dir)]) == 2


# -- summary digest -----------------------------------------------------------


def test_summary_includes_profile_digest(tmp_path):
    run_dir = _profiled_run_dir(str(tmp_path))
    summary = telemetry.summarize_run(run_dir)
    profile = summary["profile"]
    assert profile["events"] >= 1
    assert profile["samples"] > 0
    assert profile["interval"] == pytest.approx(
        telemetry.DEFAULT_PROFILE_INTERVAL
    )
    assert profile["functions"]
    total_self = sum(f["self"] for f in profile["functions"].values())
    assert total_self == profile["samples"]
    text = telemetry.render_summary(summary, top=5)
    assert "stack samples" in text
    assert "Hottest functions by sampled self time" in text
