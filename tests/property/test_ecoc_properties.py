"""Property tests for ECOC codebooks and decoding."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    ecoc_predict,
    generate_codebook,
    minimum_hamming_distance,
)

seeds = st.integers(0, 2**31 - 1)


@given(
    seed=seeds,
    num_classes=st.integers(2, 8),
    extra_bits=st.integers(2, 10),
)
@settings(max_examples=30, deadline=None)
def test_codebook_always_valid(seed, num_classes, extra_bits):
    code_length = int(np.ceil(np.log2(num_classes))) + extra_bits
    rng = np.random.default_rng(seed)
    book = generate_codebook(num_classes, code_length, rng, tries=50)
    assert book.shape == (num_classes, code_length)
    assert np.isin(book, (-1.0, 1.0)).all()
    assert len({tuple(r) for r in book}) == num_classes
    assert minimum_hamming_distance(book) >= 1


@given(seed=seeds, num_classes=st.integers(2, 6))
@settings(max_examples=30, deadline=None)
def test_exact_codewords_decode_to_their_class(seed, num_classes):
    rng = np.random.default_rng(seed)
    book = generate_codebook(num_classes, 4 + 3 * num_classes, rng, tries=50)
    labels = rng.integers(0, num_classes, size=12)
    logits = book[labels] * rng.uniform(0.5, 5.0)
    np.testing.assert_array_equal(ecoc_predict(logits, book), labels)


@given(seed=seeds)
@settings(max_examples=30, deadline=None)
def test_decoding_corrects_within_half_min_distance(seed):
    rng = np.random.default_rng(seed)
    book = generate_codebook(4, 20, rng, tries=80)
    correctable = (minimum_hamming_distance(book) - 1) // 2
    if correctable < 1:
        return
    labels = rng.integers(0, 4, size=10)
    logits = book[labels].copy()
    for i in range(len(labels)):
        flips = rng.choice(20, size=correctable, replace=False)
        logits[i, flips] *= -1
    np.testing.assert_array_equal(ecoc_predict(logits, book), labels)


@given(seed=seeds)
@settings(max_examples=30)
def test_decode_is_scale_invariant(seed):
    rng = np.random.default_rng(seed)
    book = generate_codebook(3, 9, rng, tries=40)
    logits = rng.normal(size=(8, 9))
    a = ecoc_predict(logits, book)
    b = ecoc_predict(logits * 13.7, book)
    np.testing.assert_array_equal(a, b)
