"""Property-based tests (hypothesis) for the stuck-at-fault model.

These verify the invariants listed in DESIGN.md section 5 over random
tensors, rates and seeds.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reram import (
    FAULT_NONE,
    FAULT_SA0,
    FAULT_SA1,
    StuckAtFaultSpec,
    WeightSpaceFaultModel,
    sample_fault_map,
)

rates = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
seeds = st.integers(min_value=0, max_value=2**31 - 1)
sizes = st.integers(min_value=1, max_value=40)


@given(p_sa=rates)
def test_spec_decomposition_sums_to_total(p_sa):
    spec = StuckAtFaultSpec(p_sa)
    assert abs(spec.p_sa0 + spec.p_sa1 - p_sa) < 1e-12
    assert spec.p_sa0 <= spec.p_sa1  # the paper's ratio favours SA1


@given(p_sa=rates, seed=seeds, n=sizes, m=sizes)
@settings(max_examples=50)
def test_fault_map_codes_are_valid(p_sa, seed, n, m):
    rng = np.random.default_rng(seed)
    fmap = sample_fault_map((n, m), StuckAtFaultSpec(p_sa), rng)
    assert fmap.shape == (n, m)
    assert np.isin(fmap, (FAULT_NONE, FAULT_SA0, FAULT_SA1)).all()


@given(seed=seeds, n=sizes, m=sizes)
@settings(max_examples=50)
def test_apply_zero_rate_identity(seed, n, m):
    rng = np.random.default_rng(seed)
    w = rng.normal(size=(n, m))
    out = WeightSpaceFaultModel().apply(w, 0.0, rng)
    np.testing.assert_array_equal(out, w)


@given(p_sa=rates, seed=seeds, n=sizes, m=sizes)
@settings(max_examples=50)
def test_faulted_values_only_zero_or_wmax(p_sa, seed, n, m):
    """Every changed weight is exactly 0 (SA0) or +/- w_max (SA1)."""
    rng = np.random.default_rng(seed)
    w = rng.normal(size=(n, m))
    w_max = np.max(np.abs(w))
    out = WeightSpaceFaultModel().apply(w, p_sa, rng)
    changed = out != w
    legal = (out[changed] == 0.0) | np.isclose(np.abs(out[changed]), w_max)
    assert legal.all()


@given(p_sa=rates, seed=seeds)
@settings(max_examples=30)
def test_apply_is_deterministic_under_seed(p_sa, seed):
    w = np.random.default_rng(0).normal(size=(15, 15))
    a = WeightSpaceFaultModel().apply(w, p_sa, np.random.default_rng(seed))
    b = WeightSpaceFaultModel().apply(w, p_sa, np.random.default_rng(seed))
    np.testing.assert_array_equal(a, b)


@given(p_sa=rates, seed=seeds)
@settings(max_examples=30)
def test_apply_never_mutates_input(p_sa, seed):
    rng = np.random.default_rng(seed)
    w = rng.normal(size=(10, 10))
    snapshot = w.copy()
    WeightSpaceFaultModel().apply(w, p_sa, rng)
    np.testing.assert_array_equal(w, snapshot)


@given(seed=seeds)
@settings(max_examples=20)
def test_fault_count_binomial(seed):
    """Fault counts concentrate around p*n (within 6 sigma)."""
    p_sa = 0.1
    n = 100 * 100
    rng = np.random.default_rng(seed)
    fmap = sample_fault_map((100, 100), StuckAtFaultSpec(p_sa), rng)
    count = int(np.count_nonzero(fmap))
    mean = p_sa * n
    sigma = np.sqrt(n * p_sa * (1 - p_sa))
    assert abs(count - mean) < 6 * sigma


@given(p_sa=st.floats(min_value=0.01, max_value=0.99), seed=seeds)
@settings(max_examples=30)
def test_full_rate_map_faults_everything(p_sa, seed):
    rng = np.random.default_rng(seed)
    fmap = sample_fault_map((20, 20), StuckAtFaultSpec(1.0), rng)
    assert np.all(fmap != FAULT_NONE)
