"""Property-based tests for pruning masks and projections."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pruning import magnitude_mask, project_sparse, sparsity

seeds = st.integers(min_value=0, max_value=2**31 - 1)
ratios = st.floats(min_value=0.0, max_value=0.99)
sizes = st.integers(min_value=1, max_value=30)


@given(seed=seeds, ratio=ratios, n=sizes, m=sizes)
@settings(max_examples=60)
def test_mask_sparsity_exact(seed, ratio, n, m):
    rng = np.random.default_rng(seed)
    w = rng.normal(size=(n, m))
    mask = magnitude_mask(w, ratio)
    expected_pruned = int(np.floor(ratio * w.size))
    assert int((mask == 0).sum()) == expected_pruned
    assert set(np.unique(mask)).issubset({0.0, 1.0})


@given(seed=seeds, ratio=ratios)
@settings(max_examples=40)
def test_mask_prunes_smallest_magnitudes(seed, ratio):
    rng = np.random.default_rng(seed)
    w = rng.normal(size=50)
    mask = magnitude_mask(w, ratio)
    kept = np.abs(w[mask == 1])
    pruned = np.abs(w[mask == 0])
    if kept.size and pruned.size:
        assert kept.min() >= pruned.max() - 1e-12


@given(seed=seeds, ratio=ratios)
@settings(max_examples=40)
def test_projection_is_idempotent(seed, ratio):
    rng = np.random.default_rng(seed)
    w = rng.normal(size=(8, 8))
    once = project_sparse(w, ratio)
    twice = project_sparse(once, ratio)
    np.testing.assert_array_equal(once, twice)


@given(seed=seeds, ratio=ratios)
@settings(max_examples=40)
def test_projection_minimises_distance(seed, ratio):
    """No other equally-sparse vector is closer to w than the projection."""
    rng = np.random.default_rng(seed)
    w = rng.normal(size=20)
    z = project_sparse(w, ratio)
    dist = np.linalg.norm(w - z)
    # Random competitor with the same support size.
    k = int(np.floor(ratio * w.size))
    for _ in range(5):
        competitor = w.copy()
        kill = rng.choice(w.size, size=k, replace=False)
        competitor[kill] = 0.0
        assert dist <= np.linalg.norm(w - competitor) + 1e-12


@given(seed=seeds, ratio=ratios)
@settings(max_examples=40)
def test_projection_sparsity_at_least_target(seed, ratio):
    rng = np.random.default_rng(seed)
    w = rng.normal(size=(6, 7))
    z = project_sparse(w, ratio)
    assert sparsity(z) >= np.floor(ratio * w.size) / w.size - 1e-12
