"""Property tests: analytic fault-impact moments match simulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import expected_fault_impact
from repro.reram import WeightSpaceFaultModel


@given(
    seed=st.integers(0, 2**31 - 1),
    p_sa=st.floats(0.02, 0.5),
)
@settings(max_examples=20, deadline=None)
def test_expected_sq_perturbation_matches_simulation(seed, p_sa):
    """Monte-Carlo ||dW||^2 concentrates on the closed-form expectation."""
    rng = np.random.default_rng(seed)
    w = rng.normal(size=(60, 60))
    impact = expected_fault_impact(w, p_sa)
    model = WeightSpaceFaultModel()
    sim_rng = np.random.default_rng(seed + 1)
    samples = [
        float(np.sum((model.apply(w, p_sa, sim_rng) - w) ** 2))
        for _ in range(30)
    ]
    mean = np.mean(samples)
    # 30-sample mean of a light-tailed statistic: within 25% suffices to
    # catch any formula error (wrong term is off by 2x or more).
    assert abs(mean - impact.expected_sq_perturbation) < (
        0.25 * impact.expected_sq_perturbation
    )


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=20)
def test_zero_rate_zero_impact(seed):
    rng = np.random.default_rng(seed)
    w = rng.normal(size=(10, 10))
    impact = expected_fault_impact(w, 0.0)
    assert impact.expected_sq_perturbation == 0.0
    assert impact.expected_faults == 0.0
    assert impact.rms_perturbation == 0.0


@given(
    seed=st.integers(0, 2**31 - 1),
    p_small=st.floats(0.01, 0.2),
)
@settings(max_examples=20)
def test_impact_monotone_in_rate(seed, p_small):
    rng = np.random.default_rng(seed)
    w = rng.normal(size=(20, 20))
    small = expected_fault_impact(w, p_small)
    large = expected_fault_impact(w, min(1.0, 2 * p_small))
    assert large.expected_sq_perturbation > small.expected_sq_perturbation
    assert large.expected_faults > small.expected_faults


def test_sa1_dominates_impact(rng):
    """At the paper's ratio, SA1 contributes the lion's share."""
    w = rng.normal(size=(30, 30))
    paper = expected_fault_impact(w, 0.1)
    sa0_only = expected_fault_impact(w, 0.1, ratio=(1.0, 0.0))
    sa1_only = expected_fault_impact(w, 0.1, ratio=(0.0, 1.0))
    assert sa1_only.expected_sq_perturbation > sa0_only.expected_sq_perturbation
    assert (
        sa0_only.expected_sq_perturbation
        < paper.expected_sq_perturbation
        < sa1_only.expected_sq_perturbation
    )


def test_empty_tensor_raises():
    with pytest.raises(ValueError):
        expected_fault_impact(np.zeros((0,)), 0.1)


def test_relative_perturbation_scale_invariant(rng):
    w = rng.normal(size=(15, 15))
    a = expected_fault_impact(w, 0.05)
    b = expected_fault_impact(w * 7.3, 0.05)
    assert a.relative_perturbation == pytest.approx(b.relative_perturbation)
