"""Property tests for the ADC and bit-serial recombination."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reram import (
    ADCModel,
    BitSerialMVM,
    CrossbarMapper,
    ReRAMDeviceModel,
)

FINE = ReRAMDeviceModel(g_off=1e-6, g_on=1e-4, levels=4096)

seeds = st.integers(0, 2**31 - 1)


@given(seed=seeds, bits=st.integers(1, 10))
@settings(max_examples=40)
def test_adc_idempotent(seed, bits):
    rng = np.random.default_rng(seed)
    adc = ADCModel(bits=bits, full_scale=1.0)
    x = rng.uniform(-2, 2, size=32)
    once = adc.convert(x)
    twice = adc.convert(once)
    np.testing.assert_allclose(once, twice, atol=1e-12)


@given(seed=seeds, bits=st.integers(2, 10))
@settings(max_examples=40)
def test_adc_monotone(seed, bits):
    rng = np.random.default_rng(seed)
    adc = ADCModel(bits=bits, full_scale=1.0)
    x = np.sort(rng.uniform(-1.5, 1.5, size=40))
    out = adc.convert(x)
    assert np.all(np.diff(out) >= -1e-12)


@given(seed=seeds, bits=st.integers(1, 8))
@settings(max_examples=40)
def test_adc_output_in_range(seed, bits):
    rng = np.random.default_rng(seed)
    adc = ADCModel(bits=bits, full_scale=3.0)
    out = adc.convert(rng.normal(scale=10, size=64))
    assert np.all(out >= -3.0 - 1e-12)
    assert np.all(out <= 3.0 + 1e-12)


@given(
    seed=seeds,
    rows=st.integers(2, 10),
    cols=st.integers(2, 8),
    input_bits=st.integers(2, 8),
)
@settings(max_examples=15, deadline=None)
def test_bit_serial_recombination_identity(seed, rows, cols, input_bits):
    """Ideal-ADC bit-serial MVM equals the quantised-input direct product."""
    rng = np.random.default_rng(seed)
    mapper = CrossbarMapper(device=FINE, tile_size=16)
    w = rng.normal(size=(rows, cols))
    mapped = mapper.map_matrix(w)
    mvm = BitSerialMVM(mapped, input_bits=input_bits, adc=None)
    x = rng.normal(size=(3, rows))
    codes, scale, offset = mvm._quantise_input(x)
    x_q = codes * scale + offset
    expected = x_q @ mapped.read_back()
    np.testing.assert_allclose(mvm.matvec(x), expected, rtol=1e-8, atol=1e-8)
