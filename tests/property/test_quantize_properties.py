"""Property-based tests for quantisation and the crossbar roundtrip."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reram import (
    CrossbarMapper,
    ReRAMDeviceModel,
    UniformQuantizer,
    quantize_symmetric,
)

seeds = st.integers(min_value=0, max_value=2**31 - 1)
levels = st.integers(min_value=2, max_value=257)


@given(seed=seeds, n_levels=levels)
@settings(max_examples=50)
def test_quantisation_error_bounded(seed, n_levels):
    rng = np.random.default_rng(seed)
    w = rng.uniform(-1, 1, size=64)
    out = quantize_symmetric(w, levels=n_levels, w_max=1.0)
    step = 1.0 / (n_levels - 1)
    assert np.max(np.abs(out - w)) <= step / 2 + 1e-12


@given(seed=seeds, n_levels=levels)
@settings(max_examples=50)
def test_quantisation_idempotent(seed, n_levels):
    rng = np.random.default_rng(seed)
    w = rng.uniform(-2, 2, size=32)
    once = quantize_symmetric(w, levels=n_levels, w_max=2.0)
    twice = quantize_symmetric(once, levels=n_levels, w_max=2.0)
    np.testing.assert_allclose(once, twice, atol=1e-12)


@given(seed=seeds)
@settings(max_examples=50)
def test_quantisation_odd_symmetry(seed):
    """Q(-w) == -Q(w) for the symmetric quantiser."""
    rng = np.random.default_rng(seed)
    w = rng.uniform(-1, 1, size=32)
    q = UniformQuantizer(levels=16)
    np.testing.assert_allclose(q(-w, w_max=1.0), -q(w, w_max=1.0), atol=1e-12)


@given(seed=seeds, rows=st.integers(2, 12), cols=st.integers(2, 12))
@settings(max_examples=20, deadline=None)
def test_crossbar_roundtrip_error_bounded(seed, rows, cols):
    """map -> read_back error is bounded by the conductance step size."""
    rng = np.random.default_rng(seed)
    w = rng.normal(size=(rows, cols))
    device = ReRAMDeviceModel(g_off=1e-6, g_on=1e-4, levels=1024)
    mapper = CrossbarMapper(device=device, tile_size=8)
    back = mapper.map_matrix(w).read_back()
    w_max = np.max(np.abs(w))
    step = w_max / (device.levels - 1)
    # Differential pair: error from two cells, plus the g_off offsets cancel.
    assert np.max(np.abs(back - w)) <= 2 * step + 1e-9
