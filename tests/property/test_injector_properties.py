"""Property tests for the fault injector and fleet statistics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FaultInjector, FleetReport
from repro.models import MLP

seeds = st.integers(0, 2**31 - 1)
rates = st.floats(0.0, 1.0)


@given(seed=seeds, p_sa=rates)
@settings(max_examples=25, deadline=None)
def test_inject_restore_is_identity(seed, p_sa):
    rng = np.random.default_rng(seed)
    model = MLP(6, [8], 3, rng=rng)
    snapshot = {n: p.data.copy() for n, p in model.named_parameters()}
    injector = FaultInjector(model, rng=rng)
    injector.inject(p_sa)
    injector.restore()
    for n, p in model.named_parameters():
        np.testing.assert_array_equal(p.data, snapshot[n])


@given(seed=seeds)
@settings(max_examples=25, deadline=None)
def test_injection_touches_only_crossbar_weights(seed):
    rng = np.random.default_rng(seed)
    model = MLP(6, [8], 3, batch_norm=True, rng=rng)
    injector = FaultInjector(model, rng=rng)
    targets = set(injector.target_names)
    snapshot = {n: p.data.copy() for n, p in model.named_parameters()}
    injector.inject(1.0)
    for n, p in model.named_parameters():
        if n not in targets:
            np.testing.assert_array_equal(p.data, snapshot[n])
    injector.restore()


@given(values=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=40))
@settings(max_examples=50)
def test_fleet_report_statistics_bounds(values):
    report = FleetReport(p_sa=0.1, accuracies=list(values))
    assert report.worst <= report.mean <= report.best
    assert report.worst == report.quantile(0.0)
    assert report.best == report.quantile(1.0)
    assert 0.0 <= report.yield_at(50.0) <= 1.0


@given(
    values=st.lists(st.floats(0.0, 100.0), min_size=2, max_size=40),
    threshold=st.floats(0.0, 100.0),
)
@settings(max_examples=50)
def test_fleet_yield_monotone_in_threshold(values, threshold):
    report = FleetReport(p_sa=0.1, accuracies=list(values))
    lower = max(0.0, threshold - 10.0)
    assert report.yield_at(lower) >= report.yield_at(threshold)


@given(seed=seeds)
@settings(max_examples=15, deadline=None)
def test_gradients_under_faults_are_finite(seed):
    """Backward through a fully faulted model stays numerically sane."""
    rng = np.random.default_rng(seed)
    model = MLP(6, [8], 3, rng=rng)
    injector = FaultInjector(model, rng=rng)
    x = rng.normal(size=(4, 6))
    with injector.faults(0.5):
        out = model(x)
        model.backward(np.ones_like(out))
    for p in model.parameters():
        assert np.all(np.isfinite(p.grad))
