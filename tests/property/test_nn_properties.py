"""Property-based tests for the nn framework."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn import functional as F

seeds = st.integers(min_value=0, max_value=2**31 - 1)


@given(seed=seeds, n=st.integers(1, 8), c=st.integers(1, 8))
@settings(max_examples=40)
def test_softmax_is_distribution(seed, n, c):
    rng = np.random.default_rng(seed)
    logits = rng.normal(size=(n, c)) * 20
    s = F.softmax(logits)
    assert np.all(s >= 0)
    np.testing.assert_allclose(s.sum(axis=1), 1.0, atol=1e-12)


@given(
    seed=seeds,
    kernel=st.integers(1, 3),
    stride=st.integers(1, 2),
    padding=st.integers(0, 2),
)
@settings(max_examples=40, deadline=None)
def test_im2col_col2im_adjoint(seed, kernel, stride, padding):
    rng = np.random.default_rng(seed)
    size = 6
    x = rng.normal(size=(2, 2, size, size))
    cols, _, _ = F.im2col(x, kernel, stride, padding)
    y = rng.normal(size=cols.shape)
    lhs = float(np.sum(cols * y))
    rhs = float(np.sum(x * F.col2im(y, x.shape, kernel, stride, padding)))
    assert abs(lhs - rhs) < 1e-9


@given(seed=seeds)
@settings(max_examples=30, deadline=None)
def test_linear_is_linear(seed):
    """f(a x1 + b x2) == a f(x1) + b f(x2) for bias-free Linear."""
    rng = np.random.default_rng(seed)
    layer = nn.Linear(5, 3, bias=False, rng=rng)
    x1, x2 = rng.normal(size=(2, 4, 5))
    a, b = rng.normal(size=2)
    lhs = layer(a * x1 + b * x2)
    rhs = a * layer(x1) + b * layer(x2)
    np.testing.assert_allclose(lhs, rhs, atol=1e-10)


@given(seed=seeds)
@settings(max_examples=20, deadline=None)
def test_conv_translation_equivariance(seed):
    """Circular-shifting the input shifts a stride-1 conv's output (away
    from borders, checked via circular padding equivalence on interior)."""
    rng = np.random.default_rng(seed)
    layer = nn.Conv2d(1, 1, 3, padding=0, bias=False, rng=rng)
    x = rng.normal(size=(1, 1, 8, 8))
    shifted = np.roll(x, 1, axis=3)
    out = layer(x)
    out_shifted = layer(shifted)
    # Interior columns (away from wrap-around) must match the shift.
    np.testing.assert_allclose(
        out_shifted[:, :, :, 2:], out[:, :, :, 1:-1], atol=1e-10
    )


@given(seed=seeds, smoothing=st.floats(0.0, 0.5))
@settings(max_examples=40)
def test_cross_entropy_nonnegative(seed, smoothing):
    rng = np.random.default_rng(seed)
    logits = rng.normal(size=(6, 4)) * 5
    labels = rng.integers(0, 4, size=6)
    loss, grad = nn.CrossEntropyLoss(label_smoothing=smoothing)(logits, labels)
    assert loss >= 0.0
    # Gradient rows sum to zero (softmax minus a distribution).
    np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-12)


@given(seed=seeds)
@settings(max_examples=20, deadline=None)
def test_state_dict_roundtrip_preserves_forward(seed):
    rng = np.random.default_rng(seed)
    model = nn.Sequential(
        nn.Linear(6, 8, rng=rng), nn.ReLU(), nn.Linear(8, 3, rng=rng)
    )
    clone = nn.Sequential(
        nn.Linear(6, 8, rng=np.random.default_rng(seed + 1)),
        nn.ReLU(),
        nn.Linear(8, 3, rng=np.random.default_rng(seed + 2)),
    )
    clone.load_state_dict(model.state_dict())
    x = rng.normal(size=(5, 6))
    np.testing.assert_allclose(model(x), clone(x), atol=1e-12)
