"""Tests for the experiment runner building blocks."""

import numpy as np
import pytest

from repro.experiments import get_scale
from repro.experiments.runner import (
    build_backbone,
    clone_model,
    evaluate_defect_grid,
    make_loaders,
    method_report,
    pretrain_model,
    train_fault_tolerant,
)
from repro.models import MLP, ResNet, SimpleCNN

CI = get_scale("ci").with_overrides(
    pretrain_epochs=2, ft_epochs=2, defect_runs=2,
    test_rates=(0.0, 0.05), train_rates=(0.05,),
)


def test_build_backbone_mlp(rng):
    model = build_backbone(CI, 4, rng)
    assert isinstance(model, MLP)


def test_build_backbone_simple_cnn(rng):
    scale = CI.with_overrides(model="simple_cnn")
    model = build_backbone(scale, 4, rng)
    assert isinstance(model, SimpleCNN)


def test_build_backbone_resnet(rng):
    scale = CI.with_overrides(model="resnet8", base_width=4)
    model = build_backbone(scale, 4, rng)
    assert isinstance(model, ResNet)
    assert model.num_classes == 4


def test_make_loaders_sizes():
    train, test = make_loaders(CI, 4)
    assert len(train.dataset) == CI.train_size
    assert len(test.dataset) == CI.test_size
    assert train.dataset.num_classes == 4


def test_make_loaders_large_dataset_uses_large_split():
    scale = CI.with_overrides(train_size_large=150)
    train, _ = make_loaders(scale, scale.num_classes_large)
    assert len(train.dataset) == 150


def test_make_loaders_deterministic():
    a_train, _ = make_loaders(CI, 4)
    b_train, _ = make_loaders(CI, 4)
    np.testing.assert_array_equal(a_train.dataset.images, b_train.dataset.images)


def test_clone_model_is_independent(rng):
    model = build_backbone(CI, 3, rng)
    clone = clone_model(model)
    clone.parameters()[0].data += 1.0
    assert not np.array_equal(
        model.parameters()[0].data, clone.parameters()[0].data
    )


def test_train_fault_tolerant_unknown_method(rng):
    model = build_backbone(CI, 3, rng)
    train, _ = make_loaders(CI, 3)
    with pytest.raises(ValueError):
        train_fault_tolerant(model, "two_shot", 0.05, CI, train)


def test_train_fault_tolerant_does_not_mutate_original(rng):
    model = build_backbone(CI, 3, rng)
    train, _ = make_loaders(CI, 3)
    before = {n: p.data.copy() for n, p in model.named_parameters()}
    train_fault_tolerant(model, "one_shot", 0.05, CI, train)
    for n, p in model.named_parameters():
        np.testing.assert_array_equal(p.data, before[n])


def test_evaluate_defect_grid_deterministic(rng):
    train, test = make_loaders(CI, 3)
    model, _ = pretrain_model(CI, 3, train, test)
    a = evaluate_defect_grid(model, test, (0.0, 0.05), 2, seed=9)
    b = evaluate_defect_grid(model, test, (0.0, 0.05), 2, seed=9)
    assert a == b


def test_method_report_covers_all_rates(rng):
    train, test = make_loaders(CI, 3)
    model, acc = pretrain_model(CI, 3, train, test)
    report = method_report("baseline", model, acc, test, CI)
    assert set(report.defect) == set(CI.test_rates)
    assert report.acc_pretrain == acc
    # Rate 0 entry equals the clean retrain accuracy.
    assert report.acc_defect(0.0) == pytest.approx(report.acc_retrain)
