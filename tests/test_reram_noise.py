"""Tests for the non-stuck-at variation models."""

import numpy as np
import pytest

from repro.reram import ConductanceDriftModel, ProgrammingVariationModel


def test_variation_zero_sigma_identity(rng):
    w = rng.normal(size=(10, 10))
    out = ProgrammingVariationModel().apply(w, 0.0, rng)
    np.testing.assert_array_equal(out, w)
    assert out is not w  # still a copy


def test_variation_preserves_sign(rng):
    w = rng.normal(size=(50, 50))
    out = ProgrammingVariationModel().apply(w, 0.3, rng)
    np.testing.assert_array_equal(np.sign(out), np.sign(w))


def test_variation_is_lognormal_multiplicative(rng):
    w = np.full(20000, 2.0)
    out = ProgrammingVariationModel().apply(w, 0.1, rng)
    log_ratio = np.log(out / w)
    assert abs(log_ratio.mean()) < 0.01
    assert abs(log_ratio.std() - 0.1) < 0.01


def test_variation_negative_sigma_raises(rng):
    with pytest.raises(ValueError):
        ProgrammingVariationModel().apply(np.ones(4), -0.1, rng)


def test_variation_usable_as_fault_model_in_trainer(rng):
    """The variation model plugs into the FT training loop unchanged."""
    from repro import nn
    from repro.core import OneShotFaultTolerantTrainer
    from repro.datasets import ArrayDataset, DataLoader
    from repro.models import MLP

    n = 60
    images = rng.normal(size=(n, 1, 2, 4))
    labels = rng.integers(0, 3, size=n)
    loader = DataLoader(ArrayDataset(images, labels), 30, seed=0)
    model = MLP(8, [8], 3, rng=rng)
    opt = nn.SGD(model.parameters(), lr=0.05)
    trainer = OneShotFaultTolerantTrainer(
        model, opt, p_sa_target=0.2,
        fault_model=ProgrammingVariationModel(), rng=rng,
    )
    history = trainer.fit(loader, 2)
    assert history.num_epochs == 2


def test_drift_t0_is_identity(rng):
    w = rng.normal(size=(5, 5))
    out = ConductanceDriftModel().apply(w, 0.0, rng)
    np.testing.assert_array_equal(out, w)
    out = ConductanceDriftModel().apply(w, 1.0, rng)
    np.testing.assert_array_equal(out, w)


def test_drift_shrinks_magnitudes(rng):
    w = rng.normal(size=(50, 50))
    out = ConductanceDriftModel(nu=0.1, jitter_sigma=0.0).apply(w, 100.0, rng)
    expected = w * 100.0 ** (-0.1)
    np.testing.assert_allclose(out, expected)


def test_drift_monotone_in_time(rng):
    w = np.ones(100)
    model = ConductanceDriftModel(nu=0.05, jitter_sigma=0.0)
    early = model.apply(w, 10.0, rng)
    late = model.apply(w, 1000.0, rng)
    assert np.all(late < early)


def test_drift_jitter_adds_spread(rng):
    w = np.ones(5000)
    model = ConductanceDriftModel(nu=0.05, jitter_sigma=0.1)
    out = model.apply(w, 100.0, rng)
    assert out.std() > 0.01


def test_drift_validation(rng):
    with pytest.raises(ValueError):
        ConductanceDriftModel(nu=-0.1)
    with pytest.raises(ValueError):
        ConductanceDriftModel().apply(np.ones(3), -1.0, rng)
