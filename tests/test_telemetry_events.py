"""Tests for repro.telemetry.events: sinks, the event log, JSONL round-trip."""

import json
import os

import pytest

from repro import telemetry
from repro.telemetry import (
    EventLog,
    JsonlSink,
    MemorySink,
    NullSink,
    new_run_id,
    read_events,
)


@pytest.fixture(autouse=True)
def _no_leaked_run():
    """Guarantee no test leaves a global run active."""
    yield
    telemetry.end_run()


def test_new_run_ids_are_unique():
    assert new_run_id() != new_run_id()
    assert new_run_id().startswith("run-")


def test_event_log_stamps_bookkeeping_fields():
    sink = MemorySink()
    log = EventLog(sink, run_id="run-x", clock=lambda: 123.5)
    event = log.emit("epoch_end", epoch=3, loss=0.5)
    assert event == {
        "kind": "epoch_end",
        "run_id": "run-x",
        "seq": 0,
        "ts": 123.5,
        "epoch": 3,
        "loss": 0.5,
    }
    assert sink.events == [event]


def test_event_log_sequence_is_monotonic():
    log = EventLog(MemorySink(), run_id="r")
    seqs = [log.emit("e")["seq"] for _ in range(5)]
    assert seqs == [0, 1, 2, 3, 4]


def test_null_sink_default_is_disabled():
    log = EventLog()
    assert not log.enabled
    log.emit("anything", x=1)  # must be a no-op, not an error


def test_jsonl_sink_is_lazy(tmp_path):
    path = tmp_path / "sub" / "events.jsonl"
    JsonlSink(str(path))
    assert not path.exists()  # constructing writes nothing


def test_jsonl_round_trip(tmp_path):
    path = str(tmp_path / "events.jsonl")
    sink = JsonlSink(path)
    log = EventLog(sink, run_id="run-rt")
    log.emit("a", value=1)
    log.emit("b", value=[1.5, 2.5], nested={"k": "v"})
    sink.close()

    events = read_events(path)
    assert [e["kind"] for e in events] == ["a", "b"]
    assert events[0]["value"] == 1
    assert events[1]["nested"] == {"k": "v"}
    assert all(e["run_id"] == "run-rt" for e in events)
    # One JSON object per line, every line parseable on its own.
    with open(path) as handle:
        for line in handle:
            json.loads(line)


def test_read_events_skips_truncated_trailing_line(tmp_path):
    """A crashed run's half-written last line must not poison the log."""
    path = str(tmp_path / "events.jsonl")
    log = EventLog(JsonlSink(path), run_id="run-crash")
    log.emit("a", value=1)
    log.emit("b", value=2)
    log.close()
    with open(path, "a") as handle:
        handle.write('{"kind": "c", "run_id": "run-crash", "se')  # truncated

    events, skipped = telemetry.read_events_with_errors(path)
    assert [e["kind"] for e in events] == ["a", "b"]
    assert skipped == 1
    assert read_events(path) == events  # plain reader agrees


def test_read_events_skips_non_object_and_blank_lines(tmp_path):
    path = str(tmp_path / "events.jsonl")
    with open(path, "w") as handle:
        handle.write('{"kind": "ok", "run_id": "r", "seq": 0, "ts": 1.0}\n')
        handle.write("\n")  # blank: ignored, not counted
        handle.write("[1, 2, 3]\n")  # valid JSON, wrong shape: skipped
        handle.write("not json at all\n")  # corrupt: skipped
    events, skipped = telemetry.read_events_with_errors(path)
    assert [e["kind"] for e in events] == ["ok"]
    assert skipped == 2


def test_corrupt_line_warning_names_file_and_lines(tmp_path, caplog):
    path = str(tmp_path / "events.jsonl")
    with open(path, "w") as handle:
        handle.write('{"kind": "ok", "run_id": "r", "seq": 0, "ts": 1.0}\n')
        handle.write("garbage\n")  # line 2
        handle.write('{"kind": "ok2", "run_id": "r", "seq": 1, "ts": 2.0}\n')
        handle.write("{truncated\n")  # line 4
    with caplog.at_level("WARNING", logger="repro.telemetry"):
        _, skipped = telemetry.read_events_with_errors(path)
    assert skipped == 2
    (record,) = caplog.records
    message = record.getMessage()
    # The operator can jump straight to the damage: path + line numbers.
    assert path in message
    assert "line 2, 4" in message


def test_disabled_run_writes_no_files(tmp_path):
    """The null run (telemetry off) must never touch the filesystem."""
    run = telemetry.current()
    assert run is telemetry.NULL_RUN
    assert not run.enabled
    run.emit("epoch_end", epoch=0)
    with run.span("anything"):
        pass
    run.metrics.counter("c").inc()
    assert os.listdir(tmp_path) == []


def test_session_writes_run_directory(tmp_path):
    with telemetry.session(str(tmp_path), config={"scale": "ci"}) as run:
        assert telemetry.current() is run
        run.emit("custom", x=1)
    assert telemetry.current() is telemetry.NULL_RUN

    events = read_events(os.path.join(run.directory, "events.jsonl"))
    kinds = [e["kind"] for e in events]
    assert kinds[0] == "run_start"
    assert kinds[-1] == "run_end"
    assert "custom" in kinds
    assert events[0]["config"] == {"scale": "ci"}
    # close() persisted the metrics snapshot and run provenance.
    assert os.path.isfile(os.path.join(run.directory, "metrics.json"))
    with open(os.path.join(run.directory, "run.json")) as handle:
        meta = json.load(handle)
    assert meta["run_id"] == run.run_id


def test_nested_start_run_rejected(tmp_path):
    telemetry.start_run(sink=MemorySink())
    with pytest.raises(RuntimeError):
        telemetry.start_run(sink=MemorySink())
    telemetry.end_run()


def test_memory_sink_session_collects_events():
    sink = MemorySink()
    with telemetry.session(sink=sink):
        telemetry.current().emit("ping")
    kinds = [e["kind"] for e in sink.events]
    assert kinds == ["run_start", "ping", "run_end"]


def test_telemetry_log_handler_forwards_records():
    import logging

    sink = MemorySink()
    logger = logging.getLogger("repro.test_telemetry")
    handler = telemetry.TelemetryLogHandler()
    logger.addHandler(handler)
    logger.setLevel(logging.INFO)
    # The CLI may have hung its own TelemetryLogHandler on the parent
    # "repro" logger in an earlier test; don't let records reach it twice.
    logger.propagate = False
    try:
        with telemetry.session(sink=sink):
            logger.info("hello %s", "world")
        logger.info("after the session")  # must not raise, must not record
    finally:
        logger.removeHandler(handler)
        logger.propagate = True
    logs = [e for e in sink.events if e["kind"] == "log"]
    assert len(logs) == 1
    assert logs[0]["message"] == "hello world"
    assert logs[0]["level"] == "INFO"
