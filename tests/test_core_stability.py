"""Tests for the Stability Score."""

import pytest

from repro.core import StabilityResult, stability_score


def test_formula_matches_equation_one():
    # SS = Acc_retrain / (Acc_pretrain - Acc_defect)
    assert stability_score(75.10, 75.38, 73.03) == pytest.approx(
        75.38 / (75.10 - 73.03)
    )


def test_paper_table2_value():
    """One-Shot P=0.05 row of Table II: SS(0.01) = 36.42."""
    assert stability_score(75.10, 75.38, 73.03) == pytest.approx(36.42, abs=0.01)


def test_baseline_row_near_one():
    """Collapsed baseline: Acc_defect ~ 3% -> SS ~ 1.04 as in the paper."""
    assert stability_score(75.10, 75.10, 2.97) == pytest.approx(1.04, abs=0.01)


def test_denominator_clamped_when_no_degradation():
    # Acc_defect above pretrain: denominator clamps at min_degradation.
    score = stability_score(90.0, 91.0, 92.0)
    assert score == pytest.approx(91.0 / 1.0)


def test_custom_min_degradation():
    score = stability_score(90.0, 90.0, 90.0, min_degradation=0.5)
    assert score == pytest.approx(180.0)


def test_higher_defect_accuracy_higher_score():
    low = stability_score(90.0, 89.0, 50.0)
    high = stability_score(90.0, 89.0, 85.0)
    assert high > low


def test_validation():
    with pytest.raises(ValueError):
        stability_score(-1.0, 50.0, 50.0)
    with pytest.raises(ValueError):
        stability_score(50.0, 101.0, 50.0)
    with pytest.raises(ValueError):
        stability_score(50.0, 50.0, 50.0, min_degradation=0.0)


def test_stability_result_dataclass():
    result = StabilityResult(
        method="one_shot", acc_pretrain=75.1, acc_retrain=75.38,
        acc_defect=73.03, p_sa_test=0.01,
    )
    assert result.score == pytest.approx(36.42, abs=0.01)
