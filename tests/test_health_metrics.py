"""Tests for training-health and fault-realization introspection.

Covers the two health surfaces added to the trainers and the fault
pipeline: per-epoch gradient/update statistics on ``epoch_end`` and
realized stuck-at counts from :meth:`apply_with_stats` / the injector.
"""

import numpy as np
import pytest

from repro import nn, telemetry
from repro.core import FaultInjector, Trainer
from repro.core import training as training_mod
from repro.datasets import ArrayDataset, DataLoader
from repro.models import MLP
from repro.reram.faults import (
    SA0_SA1_RATIO,
    FaultStats,
    StuckAtFaultSpec,
    WeightSpaceFaultModel,
)
from repro.telemetry import MemorySink


@pytest.fixture(autouse=True)
def _no_leaked_run():
    yield
    telemetry.end_run()


def _loader(rng, n=60):
    labels = rng.integers(0, 3, size=n)
    images = rng.normal(size=(n, 1, 2, 4)) + labels[:, None, None, None]
    return DataLoader(ArrayDataset(images, labels), 20, shuffle=True, seed=0)


def _trainer(rng, **kwargs):
    model = MLP(8, [8], 3, rng=rng)
    opt = nn.SGD(model.parameters(), lr=0.05)
    return model, Trainer(model, opt, **kwargs)


# ---------------------------------------------------------------------------
# Training health
# ---------------------------------------------------------------------------


def test_disabled_telemetry_skips_health_capture(rng, monkeypatch):
    """With telemetry off, training must do zero extra array work."""

    def _boom(parameters):
        raise AssertionError("health capture ran with telemetry disabled")

    monkeypatch.setattr(training_mod, "_global_grad_norm", _boom)
    assert telemetry.current() is telemetry.NULL_RUN
    loader = _loader(rng)
    _, trainer = _trainer(rng)
    history = trainer.fit(loader, 2)
    assert history.num_epochs == 2


def test_epoch_end_carries_health_means(rng):
    sink = MemorySink()
    loader = _loader(rng)
    _, trainer = _trainer(rng)
    with telemetry.session(sink=sink):
        trainer.fit(loader, 2)
        run = telemetry.current()
        hist = run.metrics.histogram("train/grad_norm_pre_clip")
        assert hist.count == 2 * 3  # 2 epochs x 3 batches
        assert run.metrics.histogram("train/update_ratio").count == 6
    epoch_ends = [e for e in sink.events if e["kind"] == "epoch_end"]
    assert len(epoch_ends) == 2
    for event in epoch_ends:
        assert event["grad_norm_pre_clip"] > 0.0
        assert event["grad_norm_post_clip"] == event["grad_norm_pre_clip"]
        assert 0.0 < event["update_ratio"] < 1.0


def test_grad_clip_reports_pre_and_post_norms(rng):
    sink = MemorySink()
    loader = _loader(rng)
    # A ceiling low enough that every step clips.
    _, trainer = _trainer(rng, grad_clip=1e-4)
    with telemetry.session(sink=sink):
        trainer.fit(loader, 1)
    event = next(e for e in sink.events if e["kind"] == "epoch_end")
    assert event["grad_norm_post_clip"] == pytest.approx(1e-4)
    assert event["grad_norm_pre_clip"] > event["grad_norm_post_clip"]


def test_health_resets_between_epochs(rng):
    loader = _loader(rng)
    _, trainer = _trainer(rng)
    with telemetry.session(sink=MemorySink()):
        trainer.train_epoch(loader)
        first_steps = trainer._health.steps
        trainer.train_epoch(loader)
        assert trainer._health.steps == first_steps  # reset, not accumulated


# ---------------------------------------------------------------------------
# Fault realization
# ---------------------------------------------------------------------------


def test_fault_stats_arithmetic():
    a = FaultStats(cells=100, sa0=2, sa1=8)
    b = FaultStats(cells=50, sa0=1, sa1=4)
    total = a + b
    assert total == FaultStats(cells=150, sa0=3, sa1=12)
    assert total.faulted == 15
    assert total.realized_p_sa == pytest.approx(0.1)
    assert total.realized_sa1_share == pytest.approx(0.8)
    assert FaultStats(cells=10, sa0=0, sa1=0).realized_sa1_share is None
    assert FaultStats(cells=0, sa0=0, sa1=0).realized_p_sa == 0.0


def test_realized_rates_match_nominal_split_within_binomial_tolerance(rng):
    """Realized SA0/SA1 counts agree with the paper's 1.75:9.04 split."""
    n = 200 * 200  # 40k cells: binomial noise ~0.15% on p_sa
    weights = rng.normal(size=(200, 200))
    p_sa = 0.1
    model = WeightSpaceFaultModel()
    _, stats = model.apply_with_stats(weights, p_sa, rng)

    assert stats.cells == n
    # 5-sigma binomial band on the realized total rate.
    sigma_rate = np.sqrt(p_sa * (1 - p_sa) / n)
    assert stats.realized_p_sa == pytest.approx(p_sa, abs=5 * sigma_rate)

    spec = StuckAtFaultSpec(p_sa)
    nominal_share = spec.p_sa1 / spec.p_sa
    assert nominal_share == pytest.approx(9.04 / (1.75 + 9.04))
    sigma_share = np.sqrt(
        nominal_share * (1 - nominal_share) / stats.faulted
    )
    assert stats.realized_sa1_share == pytest.approx(
        nominal_share, abs=5 * sigma_share
    )
    assert SA0_SA1_RATIO == (1.75, 9.04)


def test_apply_with_stats_matches_apply_bit_for_bit(rng):
    """The stats path must consume randomness identically to apply()."""
    weights = rng.normal(size=(40, 40))
    model = WeightSpaceFaultModel()
    seed = 1234
    plain = model.apply(weights, 0.05, np.random.default_rng(seed))
    with_stats, stats = model.apply_with_stats(
        weights, 0.05, np.random.default_rng(seed)
    )
    np.testing.assert_array_equal(plain, with_stats)
    assert stats.cells == weights.size
    # Drawn faults can exceed visibly-changed cells (SA0 on a zero weight).
    assert stats.faulted >= int(np.sum(plain != weights))


def test_injector_records_per_layer_realization(rng):
    sink = MemorySink()
    model = MLP(8, [8], 3, rng=rng)
    injector = FaultInjector(model, rng=rng)
    with telemetry.session(sink=sink):
        run = telemetry.current()
        with injector.faults(0.2):
            pass
        layer = injector.target_names[0]
        sa0 = run.metrics.counter(f"faults/layer/{layer}/sa0_total").value
        sa1 = run.metrics.counter(f"faults/layer/{layer}/sa1_total").value
        assert sa0 + sa1 > 0
        total_faulted = run.metrics.counter("faults/cells_faulted_total").value
    event = next(e for e in sink.events if e["kind"] == "fault_inject")
    assert event["cells_faulted"] == total_faulted
    assert event["sa0"] + event["sa1"] == event["cells_faulted"]
    assert event["cells_total"] >= event["cells_faulted"]
    assert event["p_sa0"] + event["p_sa1"] == pytest.approx(event["p_sa"])
    assert 0.0 < event["realized_p_sa"] < 1.0
    assert 0.0 <= event["realized_sa1_share"] <= 1.0


def test_duck_typed_fault_model_still_injects(rng):
    """Models exposing only apply() work; they just report no stats."""

    class NegateModel:
        def apply(self, weights, p_sa, rng, fault_map=None):
            return -weights

    sink = MemorySink()
    model = MLP(8, [8], 3, rng=rng)
    injector = FaultInjector(model, fault_model=NegateModel(), rng=rng)
    with telemetry.session(sink=sink):
        with injector.faults(0.1):
            pass
    event = next(e for e in sink.events if e["kind"] == "fault_inject")
    assert event["p_sa"] == 0.1
    assert "sa0" not in event  # no stats available from duck-typed model
