"""Integration: pooled runs export a valid multi-process trace, and the
run ledger diffs two seeded runs.

The acceptance contract of the observability layer: a pooled
(``workers=2``) table1 run at CI scale writes a ``trace.json`` that
passes the Chrome trace-event schema check and contains spans from at
least two distinct pids, and ``python -m repro.telemetry diff`` between
two seeded runs reports the metric delta between them.
"""

import json
import os

import pytest

from repro import telemetry
from repro.experiments import get_scale, run_table1
from repro.telemetry.cli import main as telemetry_cli

TINY = get_scale("ci").with_overrides(
    train_rates=(0.05,),
    defect_runs=4,
    test_rates=(0.0, 0.02),
    pretrain_epochs=1,
    ft_epochs=1,
    workers=2,
)


@pytest.fixture(scope="module")
def pooled_run_dir(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("pooled"))
    with telemetry.session(directory, config={"scale": "ci"}) as run:
        run_table1(TINY, dataset="small")
        path = run.directory
    return path


@pytest.fixture(scope="module")
def pooled_trace(pooled_run_dir):
    with open(os.path.join(pooled_run_dir, "trace.json")) as handle:
        return json.load(handle)


def test_pooled_run_trace_passes_schema(pooled_trace):
    assert telemetry.validate_trace(pooled_trace) == []
    assert pooled_trace["traceEvents"]


def test_pooled_run_trace_spans_multiple_pids(pooled_trace):
    span_pids = {
        e["pid"] for e in pooled_trace["traceEvents"] if e["ph"] == "X"
    }
    assert len(span_pids) >= 2  # main process plus >= 1 pool worker
    worker_slices = [
        e
        for e in pooled_trace["traceEvents"]
        if e["ph"] == "X" and e["name"] == "worker_chunk"
    ]
    assert worker_slices
    lanes = {
        e["pid"]: e["args"]["name"]
        for e in pooled_trace["traceEvents"]
        if e["ph"] == "M"
    }
    for event in worker_slices:
        assert lanes[event["pid"]].startswith("worker ")


def test_pooled_run_trace_has_experiment_phases(pooled_trace):
    names = {
        e["name"] for e in pooled_trace["traceEvents"] if e["ph"] == "X"
    }
    assert {"pretrain", "ft_train", "defect_grid"} <= names


def _seeded_run(directory, seed, loss):
    with telemetry.session(
        str(directory), config={"experiment": "table1", "seed": seed}
    ) as run:
        run.metrics.gauge("train/final_loss").set(loss)
        run.metrics.counter("train/steps_total").inc(100 * (seed + 1))
        with run.span("train"):
            pass
        return run.directory


def test_telemetry_diff_reports_injected_delta(tmp_path, capsys):
    old = _seeded_run(tmp_path, seed=0, loss=0.9)
    new = _seeded_run(tmp_path, seed=1, loss=0.4)

    assert telemetry_cli(["diff", old, new, "--json"]) == 0
    diff = json.loads(capsys.readouterr().out)
    gauges = {entry["name"]: entry for entry in diff["gauges"]}
    assert gauges["train/final_loss"]["delta"] == pytest.approx(-0.5)
    counters = {entry["name"]: entry for entry in diff["counters"]}
    assert counters["train/steps_total"]["delta"] == 100

    # The human-readable report names the moved metric too.
    assert telemetry_cli(["diff", old, new]) == 0
    assert "train/final_loss" in capsys.readouterr().out


def test_ledger_indexes_pooled_run(pooled_run_dir, capsys):
    parent = os.path.dirname(pooled_run_dir)
    assert telemetry_cli(["ls", parent]) == 0
    assert os.path.basename(pooled_run_dir) in capsys.readouterr().out
    record = telemetry.RunRecord.from_run_dir(pooled_run_dir)
    assert record.config == {"scale": "ci"}
    assert record.counters["eval/fault_draws_total"] > 0
    assert "worker_chunk" in record.spans
