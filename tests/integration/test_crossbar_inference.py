"""Integration: analog crossbar MVM agrees with effective-weight inference.

The deployment path offers two routes to simulate the accelerator:
(1) compute ``x @ W_eff`` with the read-back effective weights, or
(2) run the analog MVM tile by tile.  They must agree — with and without
faults — because (2) is physically what (1) summarises.
"""

import numpy as np
import pytest

from repro.reram import (
    CrossbarMapper,
    ReRAMDeviceModel,
    StuckAtFaultSpec,
)

DEVICE = ReRAMDeviceModel(g_off=1e-6, g_on=1e-4, levels=1024)


@pytest.fixture
def mapped(rng):
    mapper = CrossbarMapper(device=DEVICE, tile_size=16)
    w = rng.normal(size=(40, 24))  # forces a 3x2 tile grid
    return w, mapper.map_matrix(w)


def test_matvec_equals_readback_product_clean(mapped, rng):
    w, matrix = mapped
    x = rng.normal(size=(5, 40))
    analog = matrix.matvec(x)
    effective = x @ matrix.read_back()
    np.testing.assert_allclose(analog, effective, rtol=1e-9, atol=1e-9)


def test_matvec_equals_readback_product_with_faults(mapped, rng):
    w, matrix = mapped
    matrix.inject_faults(StuckAtFaultSpec(0.1), rng)
    x = rng.normal(size=(5, 40))
    analog = matrix.matvec(x)
    effective = x @ matrix.read_back()
    np.testing.assert_allclose(analog, effective, rtol=1e-9, atol=1e-9)


def test_faulty_matvec_differs_from_clean(mapped, rng):
    w, matrix = mapped
    x = rng.normal(size=40)
    clean = matrix.matvec(x)
    matrix.inject_faults(StuckAtFaultSpec(0.2), rng)
    faulty = matrix.matvec(x)
    assert not np.allclose(clean, faulty, atol=1e-6)


def test_read_noise_reaches_matvec(rng):
    noisy_device = ReRAMDeviceModel(
        g_off=1e-6, g_on=1e-4, levels=1024, read_noise_sigma=0.05
    )
    mapper = CrossbarMapper(device=noisy_device, tile_size=16)
    matrix = mapper.map_matrix(rng.normal(size=(8, 8)))
    x = rng.normal(size=8)
    a = matrix.matvec(x, np.random.default_rng(1))
    b = matrix.matvec(x, np.random.default_rng(2))
    assert not np.allclose(a, b)
