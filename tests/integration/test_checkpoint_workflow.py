"""Integration: the checkpoint-and-redeploy workflow.

A production flow trains the fault-tolerant model once, checkpoints it
with its hardening metadata, and later reloads it on another machine for
deployment — the reload must reproduce the exact defect behaviour.
"""

import numpy as np

from repro import nn
from repro.core import (
    OneShotFaultTolerantTrainer,
    evaluate_defect_accuracy,
)
from repro.datasets import ArrayDataset, DataLoader
from repro.models import MLP
from repro.nn import load_checkpoint, save_checkpoint


def test_checkpointed_ft_model_reproduces_defect_accuracy(tmp_path, rng):
    n = 100
    centers = rng.normal(size=(3, 8)) * 3
    labels = rng.integers(0, 3, size=n)
    images = centers[labels] + rng.normal(size=(n, 8)) * 0.3
    loader = DataLoader(ArrayDataset(images.reshape(n, 1, 2, 4), labels),
                        25, shuffle=True, seed=0)

    model = MLP(8, [16], 3, rng=np.random.default_rng(1))
    opt = nn.SGD(model.parameters(), lr=0.1, momentum=0.9)
    target = 0.05
    OneShotFaultTolerantTrainer(
        model, opt, p_sa_target=target, rng=np.random.default_rng(2)
    ).fit(loader, 6)

    path = str(tmp_path / "hardened.npz")
    save_checkpoint(path, model, metadata={"p_sa_target": target})

    # "Another machine": fresh model object, load the checkpoint.
    fresh = MLP(8, [16], 3, rng=np.random.default_rng(99))
    meta = load_checkpoint(path, fresh)
    assert meta["p_sa_target"] == target

    original = evaluate_defect_accuracy(
        model, loader, target, num_runs=4, rng=np.random.default_rng(3)
    )
    reloaded = evaluate_defect_accuracy(
        fresh, loader, target, num_runs=4, rng=np.random.default_rng(3)
    )
    assert original.run_accuracies == reloaded.run_accuracies
