"""Integration: a tiny instrumented experiment emits a reconstructable log.

The acceptance contract of the telemetry subsystem: with telemetry
enabled, one runner experiment produces a JSONL event log from which the
per-epoch loss curve, the per-draw defect accuracies (with their seeds)
and the per-phase wall-clock spans can all be reconstructed — and the
``summary`` CLI renders it.
"""

import json
import os

import numpy as np
import pytest

from repro import telemetry
from repro.experiments import get_scale, run_table1
from repro.experiments.cli import main as cli_main

TINY = get_scale("ci").with_overrides(
    train_rates=(0.05,),
    defect_runs=3,
    test_rates=(0.0, 0.02),
    pretrain_epochs=2,
    ft_epochs=2,
)


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("telemetry"))
    with telemetry.session(directory, config={"scale": "ci"}) as run:
        run_table1(TINY, dataset="small")
        path = run.directory
    return path


@pytest.fixture(scope="module")
def events(run_dir):
    return telemetry.read_events(os.path.join(run_dir, "events.jsonl"))


def test_event_log_is_parseable_jsonl(run_dir):
    with open(os.path.join(run_dir, "events.jsonl")) as handle:
        for line in handle:
            event = json.loads(line)
            assert "kind" in event and "run_id" in event and "seq" in event


def test_epoch_loss_curve_reconstructable(events):
    epochs = [e for e in events if e["kind"] == "epoch_end"]
    assert epochs  # pretraining + FT retraining both record epochs
    for event in epochs:
        assert isinstance(event["loss"], float)
        assert event["seconds"] >= 0.0
    # Pretraining epochs (p_sa == 0) are distinguishable from FT epochs.
    assert any(e["p_sa"] == 0.0 for e in epochs)
    assert any(e["p_sa"] > 0.0 for e in epochs)


def test_defect_draws_have_seeds_and_accuracies(events):
    draws = [e for e in events if e["kind"] == "defect_draw"]
    assert draws
    for draw in draws:
        assert draw["seed"] is not None
        assert 0.0 <= draw["accuracy"] <= 100.0
    # Every faulted testing rate produced exactly defect_runs draws per
    # evaluated model (baseline + one-shot + progressive = 3 models).
    at_002 = [d for d in draws if d["p_sa"] == 0.02]
    assert len(at_002) == TINY.defect_runs * 3


def test_defect_draw_seed_rematerialises_accuracy(events, run_dir):
    """The recorded seed really does reproduce the recorded accuracy."""
    from repro.core import evaluate_defect_accuracy
    from repro.experiments.runner import make_loaders, pretrain_model

    train_loader, test_loader = make_loaders(TINY, TINY.num_classes_small)
    model, _ = pretrain_model(TINY, TINY.num_classes_small, train_loader,
                              test_loader)
    # First defect_eval block in the log belongs to the baseline model.
    draws = [e for e in events if e["kind"] == "defect_draw"
             and e["p_sa"] == 0.02]
    first = draws[0]
    redo = evaluate_defect_accuracy(
        model, test_loader, 0.02, num_runs=1, seed=first["seed"]
    )
    assert redo.run_accuracies[0] == pytest.approx(first["accuracy"])


def test_span_wall_clock_reconstructable(events):
    ends = [e for e in events if e["kind"] == "span_end"]
    names = {e["name"] for e in ends}
    assert {"pretrain", "ft_train", "defect_grid"} <= names
    for event in ends:
        assert event["seconds"] >= 0.0


def test_fault_inject_events_count_cells(events):
    injects = [e for e in events if e["kind"] == "fault_inject"]
    assert injects
    for event in injects:
        assert 0 <= event["cells_faulted"] <= event["cells_total"]


def test_metrics_snapshot_persisted(run_dir):
    with open(os.path.join(run_dir, "metrics.json")) as handle:
        metrics = json.load(handle)
    assert metrics["counters"]["eval/fault_draws_total"] > 0
    assert metrics["counters"]["faults/injections_total"] > 0
    assert metrics["counters"]["faults/sa1_total"] >= metrics["counters"][
        "faults/sa0_total"
    ]  # the paper's 1.75:9.04 split makes SA1 dominate
    assert metrics["histograms"]["train/epoch_seconds"]["count"] > 0


def test_summarize_run_digest(run_dir):
    summary = telemetry.summarize_run(run_dir)
    assert summary["epochs"]
    assert summary["defect"]["0.02"]["draws"] == TINY.defect_runs * 3
    assert all(s is not None for s in summary["defect"]["0.02"]["seeds"])
    assert summary["spans"]
    json.dumps(summary)  # JSON-friendly


def test_summary_cli_renders_report(run_dir, capsys):
    code = cli_main(["summary", "--run", run_dir, "--quiet"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Telemetry summary" in out
    assert "Defect evaluation" in out
    assert "Spans" in out


def test_summary_cli_json(run_dir, capsys):
    code = cli_main(["summary", "--run", run_dir, "--json", "--quiet"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["run_id"].startswith("run-")


def test_summary_cli_accepts_parent_directory(run_dir, capsys):
    parent = os.path.dirname(run_dir)
    code = cli_main(["summary", "--run", parent, "--quiet"])
    assert code == 0
    assert "Telemetry summary" in capsys.readouterr().out
