"""Integration tests for the table/figure harness at CI scale."""

import numpy as np
import pytest

from repro.experiments import (
    get_scale,
    run_figure2,
    run_table1,
    run_table2,
)

CI = get_scale("ci").with_overrides(
    train_rates=(0.05,), defect_runs=3,
    test_rates=(0.0, 0.01, 0.05),
)


@pytest.fixture(scope="module")
def table1_small():
    return run_table1(CI, dataset="small")


def test_table1_has_all_rows(table1_small):
    # Baseline + one-shot + progressive per training rate.
    assert len(table1_small.reports) == 1 + 2 * len(CI.train_rates)
    assert table1_small.baseline.method == "Baseline Pretrained Model"


def test_table1_defect_grid_complete(table1_small):
    for report in table1_small.reports:
        for rate in CI.test_rates:
            report.acc_defect(rate)  # raises if missing


def test_table1_renders_text(table1_small):
    assert "Table I" in table1_small.text
    assert "Baseline" in table1_small.text
    assert "One-Shot" in table1_small.text


def test_table1_accuracy_monotone_tendency(table1_small):
    """Accuracy at the highest rate must not beat accuracy at rate 0."""
    for report in table1_small.reports:
        assert report.acc_defect(0.05) <= report.acc_defect(0.0) + 5.0


def test_table1_invalid_dataset():
    with pytest.raises(ValueError):
        run_table1(CI, dataset="medium")


def test_table2_rows_and_scores():
    scale = CI.with_overrides(train_rates=(0.05,))
    result = run_table2(scale, sparsity=0.5, train_rates=(0.05,))
    # 2 backbones x (1 baseline + 2 methods).
    assert len(result.rows) == 6
    for row in result.rows:
        assert row["ss_1"] > 0
        assert row["ss_2"] > 0
    assert "SS(0.01)" in result.text


def test_figure2_curves():
    result = run_figure2(CI, dataset="small")
    assert set(result.curves) == {
        "Dense",
        "One-Shot Pruned 40%",
        "ADMM Pruned 40%",
        "One-Shot Pruned 70%",
        "ADMM Pruned 70%",
    }
    for curve in result.curves.values():
        assert set(curve) == set(CI.test_rates)
    assert "Figure 2" in result.text


def test_figure2_invalid_dataset():
    with pytest.raises(ValueError):
        run_figure2(CI, dataset="huge")
