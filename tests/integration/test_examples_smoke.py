"""Smoke tests for the example scripts.

Each example is a full scenario (training included), so these take
minutes; they are gated behind ``REPRO_RUN_EXAMPLE_TESTS=1`` and run in
CI's nightly lane rather than on every push.  The cheap checks (scripts
compile, expose ``main``) always run.
"""

import importlib.util
import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

RUN_FULL = os.environ.get("REPRO_RUN_EXAMPLE_TESTS") == "1"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3  # the deliverable floor


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles_and_has_main(path):
    source = path.read_text()
    compile(source, str(path), "exec")  # syntax
    assert "def main(" in source
    assert '__name__ == "__main__"' in source


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
@pytest.mark.skipif(not RUN_FULL, reason="set REPRO_RUN_EXAMPLE_TESTS=1")
def test_example_runs(path):
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=900,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()
