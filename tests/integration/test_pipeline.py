"""Integration tests: the full paper pipeline at CI scale.

These train small real models on the synthetic task and verify the
*qualitative* claims of the paper end to end.
"""

import numpy as np
import pytest

from repro import nn
from repro.core import (
    OneShotFaultTolerantTrainer,
    ProgressiveFaultTolerantTrainer,
    Trainer,
    evaluate_accuracy,
    evaluate_defect_accuracy,
    stability_score,
)
from repro.datasets import DataLoader, make_synthetic_pair
from repro.models import SimpleCNN
from repro.pruning import magnitude_prune, model_sparsity


@pytest.fixture(scope="module")
def task():
    train_set, test_set = make_synthetic_pair(
        num_classes=5,
        image_size=8,
        train_size=300,
        test_size=150,
        seed=7,
        noise_sigma=0.5,
        max_shift=1,
    )
    train = DataLoader(train_set, 50, shuffle=True, seed=0)
    test = DataLoader(test_set, 150, shuffle=False)
    return train, test


@pytest.fixture(scope="module")
def pretrained(task):
    train, test = task
    model = SimpleCNN(
        in_channels=3, num_classes=5, image_size=8, width=8,
        rng=np.random.default_rng(0),
    )
    opt = nn.SGD(model.parameters(), lr=0.1, momentum=0.9, weight_decay=1e-4)
    sched = nn.CosineAnnealingLR(opt, t_max=12)
    Trainer(model, opt, scheduler=sched).fit(train, 12)
    return model


def test_pretraining_learns_task(pretrained, task):
    _, test = task
    acc = evaluate_accuracy(pretrained, test)
    assert acc > 70.0  # chance is 20%


def test_baseline_collapses_under_faults(pretrained, task):
    _, test = task
    clean = evaluate_accuracy(pretrained, test)
    defect = evaluate_defect_accuracy(
        pretrained, test, 0.1, num_runs=6, rng=np.random.default_rng(1)
    )
    assert defect.mean_accuracy < clean - 15.0


def test_fault_tolerant_training_improves_defect_accuracy(pretrained, task):
    """The paper's headline claim, end to end."""
    import copy

    train, test = task
    ft = copy.deepcopy(pretrained)
    opt = nn.SGD(ft.parameters(), lr=0.02, momentum=0.9)
    OneShotFaultTolerantTrainer(
        ft, opt, p_sa_target=0.1, rng=np.random.default_rng(2)
    ).fit(train, 10)

    base_defect = evaluate_defect_accuracy(
        pretrained, test, 0.1, num_runs=6, rng=np.random.default_rng(3)
    )
    ft_defect = evaluate_defect_accuracy(
        ft, test, 0.1, num_runs=6, rng=np.random.default_rng(3)
    )
    assert ft_defect.mean_accuracy > base_defect.mean_accuracy + 5.0

    # And the Stability Score reflects the improvement.
    acc_pre = evaluate_accuracy(pretrained, test)
    ss_base = stability_score(acc_pre, acc_pre, base_defect.mean_accuracy)
    ss_ft = stability_score(
        acc_pre, evaluate_accuracy(ft, test), ft_defect.mean_accuracy
    )
    assert ss_ft > ss_base


def test_progressive_training_runs_full_schedule(pretrained, task):
    import copy

    train, test = task
    ft = copy.deepcopy(pretrained)
    opt = nn.SGD(ft.parameters(), lr=0.02, momentum=0.9)
    trainer = ProgressiveFaultTolerantTrainer(
        ft, opt, p_sa_schedule=[0.02, 0.05, 0.1], rng=np.random.default_rng(4)
    )
    history = trainer.fit(train, 2)
    assert history.num_epochs == 6
    assert history.epoch_p_sa[0] == 0.02
    assert history.epoch_p_sa[-1] == 0.1
    # Model remains functional.
    assert evaluate_accuracy(ft, test) > 50.0


def test_pruned_model_is_more_fragile(pretrained, task):
    """Figure 2's claim: sparsity reduces fault tolerance."""
    import copy

    train, test = task
    pruned = copy.deepcopy(pretrained)
    masks = magnitude_prune(pruned, 0.7)
    from repro.pruning import finetune_pruned

    finetune_pruned(pruned, masks, train, epochs=6, lr=0.02)
    assert model_sparsity(pruned) >= 0.65

    rate = 0.05
    dense_defect = evaluate_defect_accuracy(
        pretrained, test, rate, num_runs=8, rng=np.random.default_rng(5)
    )
    pruned_defect = evaluate_defect_accuracy(
        pruned, test, rate, num_runs=8, rng=np.random.default_rng(5)
    )
    # Compare *relative* drops so different clean accuracies don't confound.
    dense_clean = evaluate_accuracy(pretrained, test)
    pruned_clean = evaluate_accuracy(pruned, test)
    dense_drop = dense_clean - dense_defect.mean_accuracy
    pruned_drop = pruned_clean - pruned_defect.mean_accuracy
    assert pruned_drop > dense_drop - 3.0


def test_defect_evaluation_never_corrupts_model(pretrained, task):
    _, test = task
    before = {n: p.data.copy() for n, p in pretrained.named_parameters()}
    evaluate_defect_accuracy(
        pretrained, test, 0.2, num_runs=3, rng=np.random.default_rng(6)
    )
    for n, p in pretrained.named_parameters():
        np.testing.assert_array_equal(p.data, before[n])
