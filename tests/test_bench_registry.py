"""Tests for repro.bench.registry and the statistical runner."""

import numpy as np
import pytest

from repro.bench import (
    BenchmarkCase,
    BenchmarkRegistry,
    RunnerConfig,
    run_case,
    run_suite,
)
from repro.telemetry import MetricsRegistry


def _make_registry():
    registry = BenchmarkRegistry()

    @registry.benchmark(
        "toy/add",
        params={"fast": {"n": 10}, "full": {"n": 1000}},
        setup=lambda params, rng: {"x": np.arange(params["n"])},
        description="adds an array to itself",
    )
    def _add(state):
        return state["x"] + state["x"]

    return registry


# -- registry ---------------------------------------------------------------


def test_decorator_registers_case():
    registry = _make_registry()
    case = registry.get("toy/add")
    assert isinstance(case, BenchmarkCase)
    assert case.description == "adds an array to itself"
    assert "toy/add" in registry
    assert len(registry) == 1


def test_duplicate_name_raises():
    registry = _make_registry()
    with pytest.raises(ValueError, match="already registered"):
        registry.register(BenchmarkCase("toy/add", lambda state: None))


def test_unknown_case_raises_with_known_names():
    registry = _make_registry()
    with pytest.raises(KeyError, match="toy/add"):
        registry.get("nope")


def test_unknown_suite_rejected_at_declaration():
    with pytest.raises(ValueError, match="unknown suite"):
        BenchmarkCase("x", lambda s: None, suites=("nightly",))
    with pytest.raises(ValueError, match="unknown suite"):
        BenchmarkCase("x", lambda s: None, params={"nightly": {}})


def test_params_for_falls_back_to_fast():
    case = BenchmarkCase(
        "x", lambda s: None, params={"fast": {"n": 3}}
    )
    assert case.params_for("full") == {"n": 3}
    assert case.params_for("fast") == {"n": 3}


def test_suite_and_pattern_filtering():
    registry = _make_registry()

    @registry.benchmark("toy/fast_only", suites=("fast",))
    def _fast_only(state):
        return None

    names = [c.name for c in registry.cases(suite="full")]
    assert names == ["toy/add"]
    names = [c.name for c in registry.cases(pattern="fast_only")]
    assert names == ["toy/fast_only"]


def test_build_uses_suite_params():
    registry = _make_registry()
    case = registry.get("toy/add")
    assert len(case.build("fast")["x"]) == 10
    assert len(case.build("full")["x"]) == 1000
    with pytest.raises(ValueError, match="not in suite"):
        BenchmarkCase("x", lambda s: None, suites=("fast",)).build("full")


def test_default_setup_passes_params_and_rng():
    case = BenchmarkCase("x", lambda s: None, params={"fast": {"n": 1}})
    state = case.build("fast", rng=np.random.default_rng(7))
    assert state["params"] == {"n": 1}
    assert isinstance(state["rng"], np.random.Generator)


def test_teardown_runs_even_when_body_raises():
    torn = []

    def _boom(state):
        raise RuntimeError("boom")

    case = BenchmarkCase(
        "x", _boom, teardown=lambda state: torn.append(True)
    )
    with pytest.raises(RuntimeError):
        run_case(case, config=RunnerConfig(warmup=1, min_repeats=1, min_time=0))
    assert torn == [True]


# -- runner -----------------------------------------------------------------


def test_runner_config_validation():
    with pytest.raises(ValueError):
        RunnerConfig(warmup=-1)
    with pytest.raises(ValueError):
        RunnerConfig(min_repeats=0)
    with pytest.raises(ValueError):
        RunnerConfig(min_repeats=10, max_repeats=5)
    with pytest.raises(ValueError):
        RunnerConfig(min_time=-0.1)


def test_run_case_counts_and_stats():
    registry = _make_registry()
    calls = []
    registry.get("toy/add").func = lambda state: calls.append(1)
    config = RunnerConfig(warmup=2, min_repeats=5, max_repeats=5, min_time=0.0)
    result = run_case(registry.get("toy/add"), "fast", config)
    assert len(calls) == 7  # 2 warmup + 5 measured
    assert result.repeats == 5
    assert result.warmup == 2
    assert result.suite == "fast"
    assert result.params == {"n": 10}
    for key in ("median", "mad", "mean", "p95", "p99", "std"):
        assert key in result.stats


def test_run_case_honours_min_time():
    registry = _make_registry()
    config = RunnerConfig(
        warmup=0, min_repeats=1, max_repeats=10_000, min_time=0.02
    )
    result = run_case(registry.get("toy/add"), "fast", config)
    assert result.stats["total"] >= 0.02 or result.repeats == 10_000


def test_run_case_observes_telemetry_histogram():
    registry = _make_registry()
    metrics = MetricsRegistry()
    config = RunnerConfig(warmup=0, min_repeats=4, max_repeats=4, min_time=0)
    run_case(registry.get("toy/add"), "fast", config, metrics=metrics)
    hist = metrics.histogram("bench_seconds/toy/add")
    assert hist.count == 4


def test_run_suite_runs_all_matching_cases():
    registry = _make_registry()

    @registry.benchmark("toy/other", suites=("fast",))
    def _other(state):
        return None

    config = RunnerConfig(warmup=0, min_repeats=1, max_repeats=1, min_time=0)
    seen = []
    results = run_suite(
        "fast", config, registry=registry, progress=seen.append
    )
    assert [r.name for r in results] == ["toy/add", "toy/other"]
    assert seen == ["toy/add", "toy/other"]
    with pytest.raises(ValueError, match="no benchmark cases"):
        run_suite("fast", config, registry=registry, pattern="zzz")
