"""Tests for repro.telemetry.monitor: snapshots, lifecycle, worker merge."""

import numpy as np
import pytest

from repro import telemetry
from repro.core.evaluate import evaluate_defect_accuracy
from repro.datasets import DataLoader, make_synthetic_pair
from repro.models import MLP
from repro.telemetry import MemorySink, ResourceMonitor, sample_resources


@pytest.fixture(autouse=True)
def _no_leaked_run():
    yield
    telemetry.end_run()


# -- sample_resources --------------------------------------------------------


def test_sample_has_stable_schema():
    sample = sample_resources()
    assert set(sample) == {
        "rss_bytes",
        "max_rss_bytes",
        "cpu_seconds",
        "num_fds",
        "tracemalloc_current",
        "tracemalloc_peak",
    }
    # On Linux /proc is available; RSS and fd counts should be live.
    assert sample["rss_bytes"] is None or sample["rss_bytes"] > 0
    assert sample["cpu_seconds"] >= 0


def test_sample_reports_tracemalloc_when_tracing():
    import tracemalloc

    assert sample_resources()["tracemalloc_current"] is None
    tracemalloc.start()
    try:
        blob = list(range(10_000))  # noqa: F841  (must stay referenced)
        sample = sample_resources()
        assert sample["tracemalloc_current"] > 0
        assert sample["tracemalloc_peak"] >= sample["tracemalloc_current"]
    finally:
        tracemalloc.stop()


# -- lifecycle ---------------------------------------------------------------


def test_monitor_samples_on_start_and_stop():
    sink = MemorySink()
    with telemetry.session(sink=sink) as run:
        monitor = ResourceMonitor(run=run, interval=60.0)
        monitor.start()
        assert monitor.running
        monitor.stop()
        assert not monitor.running
        snapshot = run.metrics.snapshot()
    samples = [e for e in sink.events if e["kind"] == "resource_sample"]
    # One synchronous sample at start, one at stop; the 60 s interval
    # guarantees the thread never fired in between.
    assert len(samples) == 2
    assert snapshot["counters"]["resource/samples_total"] == 2
    assert snapshot["gauges"]["resource/cpu_seconds"] >= 0
    assert snapshot["histograms"]["resource/rss_bytes"]["count"] == 2


def test_start_and_stop_are_idempotent():
    sink = MemorySink()
    with telemetry.session(sink=sink) as run:
        monitor = ResourceMonitor(run=run, interval=60.0)
        assert monitor.start() is monitor.start()
        monitor.stop()
        monitor.stop()
    samples = [e for e in sink.events if e["kind"] == "resource_sample"]
    assert len(samples) == 2


def test_monitor_is_noop_on_disabled_run():
    monitor = ResourceMonitor(run=telemetry.NULL_RUN, interval=60.0)
    monitor.start()
    assert not monitor.running
    monitor.stop()  # must not raise


def test_monitor_context_manager():
    sink = MemorySink()
    with telemetry.session(sink=sink) as run:
        with ResourceMonitor(run=run, interval=60.0) as monitor:
            assert monitor.running
        assert not monitor.running
    assert sum(e["kind"] == "resource_sample" for e in sink.events) == 2


def test_monitor_rejects_bad_interval():
    with pytest.raises(ValueError):
        ResourceMonitor(interval=0)


# -- opt-in via session(resources=True) --------------------------------------


def test_session_resources_flag_attaches_monitor():
    sink = MemorySink()
    with telemetry.session(sink=sink, resources=True) as run:
        assert run.monitoring
        assert run.monitor is not None and run.monitor.running
    samples = [e for e in sink.events if e["kind"] == "resource_sample"]
    assert len(samples) >= 2  # start + stop at minimum


def test_session_without_flag_has_no_monitor():
    with telemetry.session(sink=MemorySink()) as run:
        assert not run.monitoring
        assert run.monitor is None


# -- worker samples ride the merge path --------------------------------------


def test_pool_run_merges_worker_samples():
    model = MLP(48, [16], 4, rng=np.random.default_rng(7))
    _, test = make_synthetic_pair(
        num_classes=4, image_size=4, train_size=8, test_size=24,
        seed=0, bandwidth=1, channels=3,
    )
    loader = DataLoader(test, 24, shuffle=False)
    sink = MemorySink()
    with telemetry.session(sink=sink, resources=True) as run:
        evaluate_defect_accuracy(
            model, loader, 0.05, num_runs=4, seed=11, workers=2
        )
    samples = [e for e in sink.events if e["kind"] == "resource_sample"]
    worker_samples = [e for e in samples if e.get("worker_pid")]
    # Every worker chunk runs its own monitor: begin/end samples per
    # chunk at minimum, merged back stamped with the producing pid.
    assert worker_samples
    # Worker sample counters merged into the parent registry; the final
    # snapshot (taken at close, after the parent monitor's stop sample)
    # accounts for every sample event in the stream.
    snapshot = run.metrics.snapshot()
    assert snapshot["counters"]["resource/samples_total"] == len(samples)
