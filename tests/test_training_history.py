"""Tests for TrainingHistory and table-rendering edge cases."""

import numpy as np
import pytest

from repro.core import AccuracyReport, TrainingHistory
from repro.experiments import render_table1, render_series


def test_history_empty_defaults():
    history = TrainingHistory()
    assert history.num_epochs == 0
    assert history.final_val_accuracy is None


def test_history_accumulates():
    history = TrainingHistory()
    history.epoch_losses.extend([1.0, 0.5])
    history.epoch_val_accuracy.extend([50.0, 60.0])
    assert history.num_epochs == 2
    assert history.final_val_accuracy == 60.0


def make_report(name, values, rates):
    report = AccuracyReport(method=name, acc_pretrain=90.0, acc_retrain=89.0)
    for rate, value in zip(rates, values):
        report.add_defect(rate, value)
    return report


def test_render_table1_highlight_top_larger_than_rows():
    rates = (0.0, 0.01)
    reports = [make_report("only", [90.0, 70.0], rates)]
    text = render_table1("T", reports, rates, highlight_top=5)
    assert "70.00*" in text


def test_render_table1_no_star_on_clean_column():
    rates = (0.0, 0.01)
    reports = [
        make_report("a", [90.0, 70.0], rates),
        make_report("b", [91.0, 60.0], rates),
    ]
    text = render_table1("T", reports, rates, highlight_top=1)
    assert "90.00*" not in text
    assert "91.00*" not in text
    assert "70.00*" in text


def test_render_table1_columns_aligned():
    rates = (0.0, 0.01, 0.1)
    reports = [
        make_report("short", [90.0, 70.0, 10.0], rates),
        make_report("a much longer method name", [90.0, 71.0, 11.0], rates),
    ]
    text = render_table1("T", reports, rates)
    lines = [l for l in text.splitlines() if "|" in l]
    pipe_positions = [tuple(i for i, c in enumerate(l) if c == "|")
                      for l in lines]
    # Header and all rows share the same column boundaries.
    assert len(set(pipe_positions)) == 1


def test_render_series_missing_rate_raises():
    with pytest.raises(KeyError):
        render_series("F", {"dense": {0.0: 90.0}}, rates=(0.0, 0.1))
