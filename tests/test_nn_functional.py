"""Tests for the low-level array ops."""

import numpy as np
import pytest

from repro.nn import functional as F


def test_conv_output_size_basic():
    assert F.conv_output_size(8, 3, 1, 1) == 8
    assert F.conv_output_size(8, 3, 2, 1) == 4
    assert F.conv_output_size(8, 1, 1, 0) == 8


def test_conv_output_size_invalid_raises():
    with pytest.raises(ValueError):
        F.conv_output_size(2, 5, 1, 0)


def test_pad_unpad_roundtrip(rng):
    x = rng.normal(size=(2, 3, 5, 5))
    padded = F.pad2d(x, 2)
    assert padded.shape == (2, 3, 9, 9)
    np.testing.assert_array_equal(F.unpad2d(padded, 2), x)


def test_pad_zero_is_identity(rng):
    x = rng.normal(size=(1, 1, 4, 4))
    assert F.pad2d(x, 0) is x


def test_im2col_shape(rng):
    x = rng.normal(size=(2, 3, 8, 8))
    cols, oh, ow = F.im2col(x, kernel=3, stride=1, padding=1)
    assert (oh, ow) == (8, 8)
    assert cols.shape == (2 * 8 * 8, 3 * 9)


def test_im2col_values_against_naive(rng):
    x = rng.normal(size=(1, 2, 5, 5))
    cols, oh, ow = F.im2col(x, kernel=3, stride=2, padding=0)
    # Output pixel (0, 0) should be the top-left 3x3 patch of each channel.
    patch = x[0, :, 0:3, 0:3].reshape(-1)
    np.testing.assert_allclose(cols[0], patch)
    # Output pixel (1, 1) -> patch starting at (2, 2).
    patch = x[0, :, 2:5, 2:5].reshape(-1)
    np.testing.assert_allclose(cols[1 * ow + 1], patch)


def test_col2im_is_adjoint_of_im2col(rng):
    """<im2col(x), y> == <x, col2im(y)> — the defining adjoint property."""
    x = rng.normal(size=(2, 3, 6, 6))
    kernel, stride, padding = 3, 2, 1
    cols, _, _ = F.im2col(x, kernel, stride, padding)
    y = rng.normal(size=cols.shape)
    lhs = float(np.sum(cols * y))
    back = F.col2im(y, x.shape, kernel, stride, padding)
    rhs = float(np.sum(x * back))
    assert abs(lhs - rhs) < 1e-10


def test_softmax_rows_sum_to_one(rng):
    logits = rng.normal(size=(5, 7)) * 10
    s = F.softmax(logits, axis=1)
    np.testing.assert_allclose(s.sum(axis=1), np.ones(5))
    assert np.all(s >= 0)


def test_softmax_is_shift_invariant(rng):
    logits = rng.normal(size=(3, 4))
    np.testing.assert_allclose(
        F.softmax(logits), F.softmax(logits + 100.0), atol=1e-12
    )


def test_log_softmax_matches_log_of_softmax(rng):
    logits = rng.normal(size=(3, 6))
    np.testing.assert_allclose(
        F.log_softmax(logits), np.log(F.softmax(logits)), atol=1e-12
    )


def test_log_softmax_stable_for_large_logits():
    logits = np.array([[1000.0, 0.0]])
    out = F.log_softmax(logits)
    assert np.all(np.isfinite(out))


def test_one_hot_basic():
    encoded = F.one_hot(np.array([0, 2, 1]), 3)
    np.testing.assert_array_equal(
        encoded, np.array([[1, 0, 0], [0, 0, 1], [0, 1, 0]], dtype=float)
    )


def test_one_hot_out_of_range_raises():
    with pytest.raises(ValueError):
        F.one_hot(np.array([0, 3]), 3)
    with pytest.raises(ValueError):
        F.one_hot(np.array([-1]), 3)


def test_one_hot_requires_1d():
    with pytest.raises(ValueError):
        F.one_hot(np.zeros((2, 2), dtype=int), 3)
