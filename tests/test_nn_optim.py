"""Tests for optimisers, including pruning-mask support."""

import numpy as np
import pytest

from repro import nn


def make_param(value):
    return nn.Parameter(np.asarray(value, dtype=float))


def test_sgd_plain_step():
    p = make_param([1.0, 2.0])
    opt = nn.SGD([p], lr=0.1)
    p.grad[...] = [1.0, -1.0]
    opt.step()
    np.testing.assert_allclose(p.data, [0.9, 2.1])


def test_sgd_momentum_accumulates():
    p = make_param([0.0])
    opt = nn.SGD([p], lr=1.0, momentum=0.5)
    p.grad[...] = [1.0]
    opt.step()  # v=1, p=-1
    np.testing.assert_allclose(p.data, [-1.0])
    p.grad[...] = [1.0]
    opt.step()  # v=1.5, p=-2.5
    np.testing.assert_allclose(p.data, [-2.5])


def test_sgd_weight_decay_shrinks_weights():
    p = make_param([10.0])
    opt = nn.SGD([p], lr=0.1, weight_decay=0.1)
    p.grad[...] = [0.0]
    opt.step()
    np.testing.assert_allclose(p.data, [10.0 - 0.1 * 0.1 * 10.0])


def test_sgd_nesterov_differs_from_plain_momentum():
    p1, p2 = make_param([0.0]), make_param([0.0])
    opt1 = nn.SGD([p1], lr=1.0, momentum=0.5)
    opt2 = nn.SGD([p2], lr=1.0, momentum=0.5, nesterov=True)
    for opt, p in ((opt1, p1), (opt2, p2)):
        p.grad[...] = [1.0]
        opt.step()
        p.grad[...] = [1.0]
        opt.step()
    assert p1.data[0] != p2.data[0]


def test_sgd_skips_frozen_params():
    p = make_param([1.0])
    p.requires_grad = False
    opt = nn.SGD([p], lr=0.1)
    p.grad[...] = [5.0]
    opt.step()
    np.testing.assert_allclose(p.data, [1.0])


def test_sgd_validation():
    p = make_param([1.0])
    with pytest.raises(ValueError):
        nn.SGD([p], lr=0.0)
    with pytest.raises(ValueError):
        nn.SGD([p], lr=0.1, momentum=1.0)
    with pytest.raises(ValueError):
        nn.SGD([p], lr=0.1, nesterov=True)
    with pytest.raises(ValueError):
        nn.SGD([], lr=0.1)


def test_optimizer_zero_grad():
    p = make_param([1.0])
    p.grad[...] = [3.0]
    nn.SGD([p], lr=0.1).zero_grad()
    np.testing.assert_allclose(p.grad, [0.0])


def test_mask_zeroes_and_keeps_pruned_weights_zero():
    p = make_param([1.0, 2.0, 3.0])
    opt = nn.SGD([p], lr=0.1, momentum=0.9)
    opt.attach_mask(p, np.array([1.0, 0.0, 1.0]))
    np.testing.assert_allclose(p.data, [1.0, 0.0, 3.0])
    for _ in range(3):
        p.grad[...] = [1.0, 1.0, 1.0]
        opt.step()
    assert p.data[1] == 0.0
    assert p.data[0] != 1.0  # unmasked weights still train


def test_mask_shape_mismatch_raises():
    p = make_param([1.0, 2.0])
    opt = nn.SGD([p], lr=0.1)
    with pytest.raises(ValueError):
        opt.attach_mask(p, np.ones(3))


def test_detach_masks_lets_weights_regrow():
    p = make_param([1.0, 2.0])
    opt = nn.SGD([p], lr=0.1)
    opt.attach_mask(p, np.array([1.0, 0.0]))
    opt.detach_masks()
    p.grad[...] = [0.0, -1.0]
    opt.step()
    assert p.data[1] > 0.0


def test_adam_moves_toward_minimum():
    # Minimise f(p) = (p - 3)^2 from p=0.
    p = make_param([0.0])
    opt = nn.Adam([p], lr=0.1)
    for _ in range(200):
        p.grad[...] = 2 * (p.data - 3.0)
        opt.step()
    assert abs(p.data[0] - 3.0) < 0.05


def test_adam_first_step_size_is_lr():
    """With bias correction, the first Adam step is ~lr regardless of grad scale."""
    for scale in (1e-3, 1e3):
        p = make_param([0.0])
        opt = nn.Adam([p], lr=0.1)
        p.grad[...] = [scale]
        opt.step()
        assert abs(abs(p.data[0]) - 0.1) < 1e-6


def test_adam_decoupled_weight_decay():
    p = make_param([1.0])
    opt = nn.Adam([p], lr=0.1, weight_decay=0.5, decoupled=True)
    p.grad[...] = [0.0]
    opt.step()
    np.testing.assert_allclose(p.data, [1.0 - 0.1 * 0.5 * 1.0])


def test_adam_validation():
    p = make_param([1.0])
    with pytest.raises(ValueError):
        nn.Adam([p], lr=0.1, betas=(1.0, 0.999))


def test_sgd_trains_linear_regression(rng):
    """End-to-end sanity: SGD fits a linear map."""
    true_w = rng.normal(size=(3, 5))
    x = rng.normal(size=(100, 5))
    y = x @ true_w.T
    layer = nn.Linear(5, 3, rng=rng)
    opt = nn.SGD(layer.parameters(), lr=0.05, momentum=0.9)
    loss_fn = nn.MSELoss()
    for _ in range(300):
        opt.zero_grad()
        pred = layer(x)
        loss, grad = loss_fn(pred, y)
        layer.backward(grad)
        opt.step()
    assert loss < 1e-4
