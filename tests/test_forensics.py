"""Tests for repro.forensics: deviation probes, aggregation, rendering."""

import numpy as np
import pytest

from repro import evaluate_defect_accuracy, nn, telemetry
from repro.core import evaluate_one_draw, layer_sensitivity
from repro.core.evaluate import FaultDrawSpec
from repro.datasets import ArrayDataset, DataLoader
from repro.forensics import (
    DeviationProbe,
    ForensicsConfig,
    aggregate_events,
    aggregate_payloads,
    deviation_matrix,
    finalize_layer,
    forensics_summary,
    named_leaf_modules,
    render_forensics,
)
from repro.models import MLP


@pytest.fixture(autouse=True)
def _no_leaked_run():
    yield
    telemetry.end_run()


def setup(rng, n=40, shuffle=False):
    images = rng.normal(size=(n, 1, 2, 4))
    labels = rng.integers(0, 3, size=n)
    loader = DataLoader(
        ArrayDataset(images, labels), 20, shuffle=shuffle, seed=5
    )
    model = MLP(8, [8], 3, rng=rng)
    return model, loader


# -- config / leaf discovery -------------------------------------------------
def test_config_validation():
    with pytest.raises(ValueError):
        ForensicsConfig(threshold=0.0)
    with pytest.raises(ValueError):
        ForensicsConfig(tol=-1.0)


def test_named_leaf_modules_order(rng):
    model = MLP(8, [8], 3, rng=rng)
    names = [name for name, _ in named_leaf_modules(model)]
    assert len(names) == len(set(names))
    assert all("." in name or name for name in names)
    # A childless root gets the sentinel name.
    leaf = nn.Linear(4, 2, rng=rng)
    assert named_leaf_modules(leaf) == [("(root)", leaf)]


# -- the probe ---------------------------------------------------------------
def test_probe_zero_fault_draw_is_all_zero_deviation(rng):
    model, loader = setup(rng)
    probe = DeviationProbe(model)
    pristine = {n: p.data.copy() for n, p in model.named_parameters()}
    accuracy, payload = probe.compare(loader, pristine)
    assert payload["num_flipped"] == 0
    assert payload["undiverged_flips"] == 0
    for entry in payload["layers"]:
        assert entry["sum_sq_dev"] == 0.0
        assert entry["rel_l2"] == 0.0
        assert entry["frac_perturbed"] == 0.0
        assert entry["snr_db"] is None  # infinite SNR reported as None
        assert entry["cosine"] == pytest.approx(1.0)


def test_probe_accuracy_matches_evaluate_one_draw(rng):
    model, loader = setup(rng)
    cfg = FaultDrawSpec(p_sa=0.1)
    expected = evaluate_one_draw(model, loader, cfg, 42)
    # Re-materialise the same draw and hand it to the probe.
    from repro.core.injector import FaultInjector
    from repro.reram.deploy import crossbar_parameters

    injector = FaultInjector(model, rng=np.random.default_rng(42))
    injector.inject(0.1)
    faulted = {n: p.data.copy() for n, p in crossbar_parameters(model)}
    injector.restore()
    accuracy, payload = DeviationProbe(model).compare(loader, faulted)
    assert accuracy == expected
    assert payload["accuracy"] == expected


def test_probe_restores_model_and_mode(rng):
    model, loader = setup(rng)
    model.train()
    pristine = {n: p.data.copy() for n, p in model.named_parameters()}
    faulted = {n: v * 1.5 for n, v in pristine.items() if n.endswith("weight")}
    DeviationProbe(model).compare(loader, faulted)
    assert model.training
    for n, p in model.named_parameters():
        np.testing.assert_array_equal(p.data, pristine[n])
    # No hooks left behind on any module.
    assert all(not m._forward_hooks for m in model.modules())


def test_probe_unknown_parameter_raises(rng):
    model, loader = setup(rng)
    with pytest.raises(KeyError):
        DeviationProbe(model).compare(loader, {"nope.weight": np.zeros(1)})


def test_probe_shape_mismatch_raises(rng):
    model, loader = setup(rng)
    name = next(n for n, _ in model.named_parameters())
    with pytest.raises(ValueError):
        DeviationProbe(model).compare(loader, {name: np.zeros((1, 1))})


def test_first_divergence_counts_are_consistent(rng):
    model, loader = setup(rng, n=60)
    from repro.core.injector import FaultInjector
    from repro.reram.deploy import crossbar_parameters

    injector = FaultInjector(model, rng=np.random.default_rng(3))
    injector.inject(0.3)
    faulted = {n: p.data.copy() for n, p in crossbar_parameters(model)}
    injector.restore()
    _, payload = DeviationProbe(model).compare(loader, faulted)
    attributed = sum(e["first_divergence"] for e in payload["layers"])
    assert attributed + payload["undiverged_flips"] == payload["num_flipped"]
    assert payload["num_samples"] == 60


def test_probe_flags_shuffled_loader_once(rng):
    model, loader = setup(rng, shuffle=True)
    sink = telemetry.MemorySink()
    telemetry.start_run(sink=sink)
    pristine = {n: p.data.copy() for n, p in model.named_parameters()}
    probe = DeviationProbe(model)
    probe.compare(loader, pristine)
    probe.compare(loader, pristine)
    warnings = [
        e for e in sink.events if e["kind"] == "forensics_shuffled_loader"
    ]
    assert len(warnings) == 1


# -- aggregation -------------------------------------------------------------
def test_finalize_layer_degenerate_denominators():
    zeros = {k: 0 for k in (
        "sum_sq_dev", "sum_sq_clean", "sum_dot", "sum_sq_fault",
        "perturbed", "elements", "first_divergence",
    )}
    out = finalize_layer(zeros)
    assert out["rel_l2"] is None
    assert out["cosine"] is None
    assert out["snr_db"] is None
    assert out["frac_perturbed"] is None


def test_aggregate_payloads_sums_in_order():
    layer = {
        "layer": "fc", "sum_sq_dev": 1.0, "sum_sq_clean": 4.0,
        "sum_dot": 2.0, "sum_sq_fault": 4.0, "perturbed": 5,
        "elements": 10, "first_divergence": 1,
    }
    payload = {
        "num_samples": 20, "num_flipped": 2, "undiverged_flips": 1,
        "layers": [layer],
    }
    aggregate = aggregate_payloads([payload, payload])
    assert aggregate["num_draws"] == 2
    assert aggregate["num_samples"] == 40
    assert aggregate["num_flipped"] == 4
    (entry,) = aggregate["layers"]
    assert entry["sum_sq_dev"] == 2.0
    assert entry["rel_l2"] == pytest.approx((2.0 / 8.0) ** 0.5)
    assert entry["frac_perturbed"] == 0.5
    assert entry["first_divergence"] == 2


def test_deviation_matrix_pivots_whole_model_only():
    def agg(p_sa, target, value):
        return {
            "p_sa": p_sa, "target": target,
            "layers": [{"layer": "fc", "rel_l2": value}],
        }

    layers, rates, cells = deviation_matrix(
        [agg(0.1, None, 0.5), agg(0.05, None, 0.2), agg(0.1, "fc.weight", 9.9)]
    )
    assert layers == ["fc"]
    assert rates == [0.05, 0.1]
    assert cells[("fc", 0.1)] == 0.5
    assert ("fc", 0.1) in cells and len(cells) == 2


# -- end-to-end through evaluate_defect_accuracy -----------------------------
def test_forensics_does_not_change_accuracy(rng):
    model, loader = setup(rng)
    plain = evaluate_defect_accuracy(model, loader, 0.1, num_runs=3, seed=7)
    forensic = evaluate_defect_accuracy(
        model, loader, 0.1, num_runs=3, seed=7, forensics=ForensicsConfig()
    )
    assert forensic.run_accuracies == plain.run_accuracies
    assert plain.forensics is None
    assert forensic.forensics is not None
    assert forensic.forensics["num_draws"] == 3
    assert forensic.forensics["p_sa"] == 0.1
    assert forensic.forensics["target"] is None


def test_forensics_skipped_at_zero_rate(rng):
    model, loader = setup(rng)
    result = evaluate_defect_accuracy(
        model, loader, 0.0, num_runs=3, seed=7, forensics=ForensicsConfig()
    )
    assert result.forensics is None


def test_forensics_bit_identical_across_worker_counts(rng):
    model, loader = setup(rng)
    aggregates = []
    for workers in (0, 2, 8):
        result = evaluate_defect_accuracy(
            model, loader, 0.15, num_runs=4, seed=11,
            workers=workers, forensics=ForensicsConfig(),
        )
        aggregates.append((result.run_accuracies, result.forensics))
    assert aggregates[0] == aggregates[1] == aggregates[2]


def test_forensics_events_rebuild_live_aggregate(rng):
    model, loader = setup(rng)
    sink = telemetry.MemorySink()
    telemetry.start_run(sink=sink)
    result = evaluate_defect_accuracy(
        model, loader, 0.1, num_runs=3, seed=7, forensics=ForensicsConfig()
    )
    draws = [e for e in sink.events if e["kind"] == "forensics_draw"]
    assert len(draws) == 3
    assert {e["draw"] for e in draws} == {0, 1, 2}
    (offline,) = aggregate_events(sink.events)
    assert offline["layers"] == result.forensics["layers"]
    assert offline["num_samples"] == result.forensics["num_samples"]
    evals = [e for e in sink.events if e["kind"] == "forensics_eval"]
    assert len(evals) == 1
    assert evals[0]["layers"] == result.forensics["layers"]


def test_layer_sensitivity_forensics(rng):
    model, loader = setup(rng)
    sink = telemetry.MemorySink()
    telemetry.start_run(sink=sink)
    plain = layer_sensitivity(model, loader, 0.2, num_runs=2, seed=13)
    forensic = layer_sensitivity(
        model, loader, 0.2, num_runs=2, seed=13, forensics=ForensicsConfig()
    )
    assert [s.mean_accuracy for s in forensic] == [
        s.mean_accuracy for s in plain
    ]
    assert all(s.num_runs == 2 for s in forensic)
    assert all(s.std_accuracy >= 0.0 for s in forensic)
    targets = {
        e["target"] for e in sink.events if e["kind"] == "forensics_draw"
    }
    assert targets == {s.name for s in forensic}
    evals = [e for e in sink.events if e["kind"] == "forensics_eval"]
    assert {e["target"] for e in evals} == targets


def test_layer_sensitivity_forensics_parallel_identical(rng):
    model, loader = setup(rng)
    serial = layer_sensitivity(
        model, loader, 0.2, num_runs=2, seed=13, forensics=ForensicsConfig()
    )
    pooled = layer_sensitivity(
        model, loader, 0.2, num_runs=2, seed=13, workers=2,
        forensics=ForensicsConfig(),
    )
    assert serial == pooled


# -- rendering ---------------------------------------------------------------
def _recorded_events(rng):
    model, loader = setup(rng)
    sink = telemetry.MemorySink()
    telemetry.start_run(sink=sink)
    for rate in (0.05, 0.15):
        evaluate_defect_accuracy(
            model, loader, rate, num_runs=2, seed=3,
            forensics=ForensicsConfig(),
        )
    layer_sensitivity(
        model, loader, 0.1, num_runs=2, seed=3, forensics=ForensicsConfig()
    )
    telemetry.end_run()
    return sink.events


def test_render_forensics_text(rng):
    events = _recorded_events(rng)
    text = render_forensics(events)
    assert "Per-layer deviation heatmap" in text
    assert "0.05" in text and "0.15" in text
    assert "First-divergence attribution" in text
    summary = forensics_summary(events)
    assert summary["draws"] == 4 + 2 * len(
        {e["target"] for e in events if e.get("target")}
    )
    assert summary["aggregates"] >= 2


def test_render_forensics_rejects_unknown_metric(rng):
    events = _recorded_events(rng)
    with pytest.raises(ValueError):
        render_forensics(events, metric="bogus")
